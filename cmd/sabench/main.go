// Command sabench runs a single evaluation application variant on the
// simulated machine and prints its metrics — the workload-driver
// counterpart of cmd/scatteradd's figure runners. It can also dump the
// memory-reference trace of the run.
//
// Usage:
//
//	sabench -app histogram -variant hw        -n 32768 -range 2048
//	sabench -app histogram -variant sortscan  -batch 256
//	sabench -app histogram -variant privatize
//	sabench -app histogram -variant overlap
//	sabench -app spmv      -variant csr|ebehw|ebesw
//	sabench -app moldyn    -variant nosa|hw|sw -mol 903 -cutoff 8
//
// Common flags: -trace FILE (dump the reference trace as CSV), -seed N,
// -shards N (tick the machine's bank clusters on N parallel workers;
// output is byte-identical for every N).
//
// Multi-node replay: -nodes N (N > 1) replays the histogram's scatter-add
// reference stream on the N-node system instead of one machine, with
// -topology selecting the interconnect (flat, flat+comb, hypercube, tree,
// tree+comb, mesh, mesh+comb) and -fanin the tree switch fan-in; -shards
// then partitions the nodes across workers. The bins are verified against
// the sequential reference either way.
//
// Request-lifecycle spans: -span-out FILE samples 1 in -span-rate memory
// operations and writes either a Perfetto/Chrome trace-event JSON
// (-span-format perfetto, load in ui.perfetto.dev) or a latency-attribution
// report (-span-format report). Profiling the simulator itself:
// -pprof-http ADDR, -cpuprofile/-memprofile FILE, -trace-out FILE.
package main

import (
	"flag"
	"fmt"
	"os"

	"scatteradd/internal/apps"
	"scatteradd/internal/machine"
	"scatteradd/internal/mem"
	"scatteradd/internal/multinode"
	"scatteradd/internal/prof"
	"scatteradd/internal/span"
	"scatteradd/internal/trace"
	"scatteradd/internal/workload"
)

// spanOpts carries the span-tracing flags.
type spanOpts struct {
	out    string
	format string
	rate   int
}

func main() {
	app := flag.String("app", "histogram", "histogram | spmv | moldyn")
	variant := flag.String("variant", "hw", "algorithm variant (see doc comment)")
	n := flag.Int("n", 32768, "histogram input length")
	rangeSize := flag.Int("range", 2048, "histogram index range")
	batch := flag.Int("batch", 0, "software sort batch (0 = default 256)")
	mol := flag.Int("mol", 903, "moldyn molecule count")
	cutoff := flag.Float64("cutoff", 8.0, "moldyn neighbor cutoff")
	seed := flag.Uint64("seed", 1, "workload seed")
	shards := flag.Int("shards", 1, "bank-cluster shards ticking the machine in parallel (1 = sequential; output is byte-identical for every value)")
	nodes := flag.Int("nodes", 1, "replay the histogram on an N-node system instead of one machine (N > 1)")
	topology := flag.String("topology", "flat", "interconnect for -nodes: flat, flat+comb, hypercube, tree, tree+comb, mesh, mesh+comb")
	fanin := flag.Int("fanin", 0, "tree switch fan-in for -nodes -topology tree* (0 = default 4)")
	traceOut := flag.String("trace", "", "write the memory-reference trace CSV here")
	spanOut := flag.String("span-out", "", "write sampled request-lifecycle spans here")
	spanFormat := flag.String("span-format", "perfetto", "span output format: perfetto | report")
	spanRate := flag.Int("span-rate", 16, "sample 1 in N issued memory operations for -span-out")
	profCfg := prof.Flags(flag.CommandLine)
	flag.Parse()

	sess, err := prof.Start(*profCfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sabench: %v\n", err)
		os.Exit(1)
	}
	if addr := sess.HTTPAddr(); addr != "" {
		fmt.Fprintf(os.Stderr, "sabench: pprof at http://%s/debug/pprof/\n", addr)
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "sabench: -shards %d invalid (want >= 1)\n", *shards)
		os.Exit(2)
	}
	sp := spanOpts{out: *spanOut, format: *spanFormat, rate: *spanRate}
	if *nodes > 1 {
		if err := runMultiNode(*app, *nodes, *topology, *fanin, *n, *rangeSize, *seed, *shards); err != nil {
			sess.Stop()
			fmt.Fprintf(os.Stderr, "sabench: %v\n", err)
			os.Exit(1)
		}
		if err := sess.Stop(); err != nil {
			fmt.Fprintf(os.Stderr, "sabench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*app, *variant, *n, *rangeSize, *batch, *mol, *cutoff, *seed, *shards, *traceOut, sp); err != nil {
		sess.Stop()
		fmt.Fprintf(os.Stderr, "sabench: %v\n", err)
		os.Exit(1)
	}
	if err := sess.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "sabench: %v\n", err)
		os.Exit(1)
	}
}

func run(app, variant string, n, rangeSize, batch, mol int, cutoff float64, seed uint64, shards int, traceOut string, sp spanOpts) error {
	cfg := machine.DefaultConfig()
	cfg.Shards = shards
	m := machine.New(cfg)
	defer m.Close()
	rec := trace.NewRecorder(0)
	if traceOut != "" {
		m.SetTracer(rec.Observe)
	}
	var spanTr *span.Tracer
	if sp.out != "" {
		if sp.format != "perfetto" && sp.format != "report" {
			return fmt.Errorf("span format %q (want perfetto, report)", sp.format)
		}
		if sp.rate < 1 {
			return fmt.Errorf("span rate %d (want >= 1)", sp.rate)
		}
		spanTr = span.New(sp.rate)
		m.SetSpanTracer(spanTr)
	}

	type verifier interface{ Verify(*machine.Machine) error }
	var res machine.Result
	var v verifier
	var desc string

	switch app {
	case "histogram":
		h := apps.NewHistogram(n, rangeSize, seed)
		v, desc = h, fmt.Sprintf("histogram n=%d range=%d", n, rangeSize)
		switch variant {
		case "hw":
			res = h.RunHW(m)
		case "overlap":
			res = h.RunHWOverlapped(m, 0)
		case "sortscan":
			res = h.RunSortScan(m, batch)
		case "privatize":
			res = h.RunPrivatization(m, 0)
		default:
			return fmt.Errorf("histogram variant %q (want hw, overlap, sortscan, privatize)", variant)
		}
	case "spmv":
		s := apps.NewSpMV(8, 8, 5, seed)
		v = s
		desc = fmt.Sprintf("spmv %dx%d nnz=%d", s.Mesh.NumNodes, s.Mesh.NumNodes, s.CSR.NNZ())
		switch variant {
		case "csr":
			res = s.RunCSR(m)
		case "ebehw":
			res = s.RunEBEHW(m)
		case "ebesw":
			res = s.RunEBESW(m, batch)
		default:
			return fmt.Errorf("spmv variant %q (want csr, ebehw, ebesw)", variant)
		}
	case "moldyn":
		md := apps.NewMolDyn(mol, cutoff, seed)
		v = md
		desc = fmt.Sprintf("moldyn mol=%d pairs=%d sa-refs=%d", md.W.NumMol, len(md.Pairs), md.NumSARefs())
		switch variant {
		case "nosa":
			res = md.RunNoSA(m)
		case "hw":
			res = md.RunHWSA(m)
		case "sw":
			res = md.RunSWSA(m, batch)
		default:
			return fmt.Errorf("moldyn variant %q (want nosa, hw, sw)", variant)
		}
	default:
		return fmt.Errorf("unknown app %q (want histogram, spmv, moldyn)", app)
	}

	if err := v.Verify(m); err != nil {
		return fmt.Errorf("result verification FAILED: %w", err)
	}

	fmt.Printf("%s, variant %s\n", desc, variant)
	fmt.Printf("  cycles        %12d  (%.1f us at %g GHz)\n",
		res.Cycles, machine.CyclesToMicros(res.Cycles), machine.ClockGHz)
	fmt.Printf("  fp ops        %12d\n", res.FPOps)
	fmt.Printf("  mem refs      %12d\n", res.MemRefs)
	sa, cs, ds := m.ComponentStats()
	fmt.Printf("  scatter-add   %12d requests, %d combined, %d FU ops, %d stall cycles\n",
		sa.SARequests, sa.Combined, sa.FUOps, sa.StallFull)
	fmt.Printf("  cache         %12d hits, %d misses, %d write-backs\n", cs.Hits, cs.Misses, cs.WriteBacks)
	fmt.Printf("  dram          %12d line reads, %d line writes, %.2f row-hit rate\n",
		ds.Reads, ds.Writes, rowHitRate(ds.RowHits, ds.RowMisses))
	fmt.Printf("  verified OK against the sequential reference\n")

	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteCSV(f, rec.Records()); err != nil {
			return err
		}
		fmt.Printf("  trace         %d references -> %s (%s)\n",
			len(rec.Records()), traceOut, trace.Summarize(rec.Records()))
	}
	if spanTr != nil {
		if err := writeSpans(spanTr, sp, fmt.Sprintf("%s/%s", app, variant)); err != nil {
			return err
		}
	}
	return nil
}

// runMultiNode replays the histogram's scatter-add reference stream on an
// N-node system with the chosen interconnect, verifies the bins against the
// sequential reference, and prints the fabric traffic counters.
func runMultiNode(app string, nodes int, topoName string, fanIn, n, rangeSize int, seed uint64, shards int) error {
	if app != "histogram" {
		return fmt.Errorf("-nodes replay supports -app histogram only (got %q)", app)
	}
	topo, err := multinode.ParseTopology(topoName, fanIn)
	if err != nil {
		return err
	}
	idx := workload.UniformIndices(n, rangeSize, seed)
	refs := make([]multinode.Ref, n)
	want := make([]int64, rangeSize)
	for i, x := range idx {
		refs[i] = multinode.Ref{Addr: mem.Addr(x), Val: mem.I64(1)}
		want[x]++
	}
	ownerSpan := (mem.Addr(rangeSize)/mem.Addr(nodes) + mem.LineWords) &^ (mem.LineWords - 1)
	cfg := multinode.DefaultConfig(nodes, 1, ownerSpan)
	cfg.Topology = topo
	cfg.Shards = shards
	s := multinode.New(cfg, mem.AddI64)
	res := s.RunTrace(refs)
	addrs := make([]mem.Addr, rangeSize)
	for i := range addrs {
		addrs[i] = mem.Addr(i)
	}
	for i, w := range s.ReadResult(addrs) {
		if mem.AsI64(w) != want[i] {
			return fmt.Errorf("result verification FAILED: bin %d = %d, want %d", i, mem.AsI64(w), want[i])
		}
	}
	fmt.Printf("histogram n=%d range=%d, %d nodes, topology %s\n", n, rangeSize, nodes, topoName)
	fmt.Printf("  cycles        %12d  (%.1f us at %g GHz)\n",
		res.Cycles, machine.CyclesToMicros(res.Cycles), machine.ClockGHz)
	fmt.Printf("  throughput    %12.2f GB/s\n", res.GBps())
	ns := res.NetStats
	fmt.Printf("  fabric        %12d sent, %d delivered, %d hops, %d root-pkts, %d combined\n",
		ns.Sent, ns.Delivered, ns.Hops, ns.RootPkts, ns.Combined)
	if res.SumBacks > 0 {
		fmt.Printf("  sum-backs     %12d partial lines\n", res.SumBacks)
	}
	fmt.Printf("  verified OK against the sequential reference\n")
	return nil
}

// writeSpans exports the sampled request lifecycles in the chosen format.
func writeSpans(tr *span.Tracer, sp spanOpts, name string) error {
	f, err := os.Create(sp.out)
	if err != nil {
		return err
	}
	switch sp.format {
	case "perfetto":
		err = span.WriteTraceEvents(f, []span.Process{tr.Process(0, name)})
	case "report":
		rep := span.Aggregate(tr.Ops())
		header := fmt.Sprintf("%s: %d sampled ops (1 in %d), mean %.1f cycles, p50 %d, p99 %d\n",
			name, rep.Ops, tr.Rate(), rep.Mean, rep.P50, rep.P99)
		_, err = fmt.Fprintf(f, "%s%s", header, rep.Format("  "))
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("  spans         %d sampled ops (1 in %d) -> %s (%s)\n",
		len(tr.Ops()), tr.Rate(), sp.out, sp.format)
	return nil
}

func rowHitRate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}
