// Command benchgate parses `go test -bench` output, summarizes each
// benchmark's median ns/op as JSON, and optionally gates a PR on a
// regression bound against a baseline summary from the main branch.
//
// Usage:
//
//	go test -bench . -count 5 ./... | benchgate -out BENCH_PR.json
//	benchgate -in pr.txt -out BENCH_PR.json -baseline base.json \
//	          -gate BenchmarkEngineTick -max-regress 0.10
//
// The baseline is a previous -out file. A missing or empty baseline, or a
// baseline that lacks the gate benchmark, disables the gate (the first run
// on a branch has nothing to compare against); parse errors in the inputs
// do not.
//
// A second gate compares two benchmarks within ONE summary — the shard
// scheduler's speedup target, where the sequential twin is measured in the
// same run rather than on the main branch:
//
//	benchgate -in pr.txt -speedup BenchmarkFig13Shard1:BenchmarkFig13Sharded \
//	          -min-speedup 2.0
//
// The run fails unless median(base) / median(test) >= min-speedup. Either
// side missing from the input is a hard failure: a speedup gate that
// silently skips when the benchmark is renamed gates nothing.
//
// A third mode gates a saload report instead of bench output — the
// server-load CI job's latency/availability bar:
//
//	benchgate -latency LOAD_PR.json -max-p99 2s -min-rps 10 -max-5xx 0
//
// It fails on p99 above -max-p99, achieved RPS below -min-rps, more than
// -max-5xx genuine 5xx responses, or any transport error. 429s and drain
// 503s are expected pushback and never gate. -latency skips the benchmark
// parsing entirely.
//
// A fourth mode lints Prometheus /metrics scrapes — the server-smoke CI
// job's telemetry-hygiene bar:
//
//	benchgate -promlint scrape1.txt
//	benchgate -promlint scrape1.txt,scrape2.txt
//
// Each file must parse as text exposition format and pass name/label
// hygiene, TYPE declaration, duplicate-series, and histogram-consistency
// checks; with two files (scrapes of the same server, in order) every
// counter and histogram series must also be monotonic between them.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"scatteradd/internal/obs"
	"scatteradd/internal/server"
)

func main() {
	in := flag.String("in", "", "benchmark output file (default stdin)")
	out := flag.String("out", "", "JSON summary output file (default stdout)")
	baseline := flag.String("baseline", "", "baseline JSON summary to gate against (optional)")
	gate := flag.String("gate", "BenchmarkEngineTick", "benchmark name the regression gate applies to")
	maxRegress := flag.Float64("max-regress", 0.10, "maximum allowed fractional ns/op regression of the gate benchmark")
	speedup := flag.String("speedup", "", "BASE:TEST benchmark pair within this summary; fail unless BASE/TEST >= -min-speedup")
	minSpeedup := flag.Float64("min-speedup", 2.0, "minimum required median speedup for the -speedup pair")
	latency := flag.String("latency", "", "saload report to gate instead of bench output")
	maxP99 := flag.Duration("max-p99", 0, "with -latency: maximum allowed p99 (0 = don't gate p99)")
	minRPS := flag.Float64("min-rps", 0, "with -latency: minimum achieved 2xx rate (0 = don't gate)")
	max5xx := flag.Int("max-5xx", 0, "with -latency: maximum allowed genuine 5xx responses")
	promlint := flag.String("promlint", "", "lint /metrics scrape file(s), comma-separated; two files also check counter monotonicity")
	flag.Parse()

	if *promlint != "" {
		msg, ok := PromLint(strings.Split(*promlint, ","))
		fmt.Fprint(os.Stderr, msg)
		if !ok {
			os.Exit(1)
		}
		return
	}

	if *latency != "" {
		rep, err := server.ReadLoadReport(*latency)
		if err != nil {
			fatal(err)
		}
		msg, ok := LatencyGate(rep, *maxP99, *minRPS, *max5xx)
		fmt.Fprintln(os.Stderr, msg)
		if !ok {
			os.Exit(1)
		}
		return
	}

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	sum, err := Summarize(r)
	if err != nil {
		fatal(err)
	}
	if len(sum) == 0 {
		fatal(fmt.Errorf("no benchmark results in input"))
	}

	js, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		fatal(err)
	}
	js = append(js, '\n')
	if *out == "" {
		os.Stdout.Write(js)
	} else if err := os.WriteFile(*out, js, 0o644); err != nil {
		fatal(err)
	}

	if *speedup != "" {
		pair := strings.SplitN(*speedup, ":", 2)
		if len(pair) != 2 || pair[0] == "" || pair[1] == "" {
			fatal(fmt.Errorf("-speedup %q: want BASE:TEST", *speedup))
		}
		msg, ok := SpeedupGate(sum, pair[0], pair[1], *minSpeedup)
		fmt.Fprintln(os.Stderr, msg)
		if !ok {
			os.Exit(1)
		}
	}

	if *baseline == "" {
		return
	}
	base, err := loadBaseline(*baseline)
	if err != nil {
		fatal(err)
	}
	msg, ok := Gate(sum, base, *gate, *maxRegress)
	fmt.Fprintln(os.Stderr, msg)
	if !ok {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
	os.Exit(2)
}

// Result is one benchmark's summary across repeated -count runs.
type Result struct {
	Name    string    `json:"name"`
	Runs    int       `json:"runs"`
	NsPerOp []float64 `json:"ns_per_op"`
	Median  float64   `json:"median_ns_per_op"`
}

// Summarize parses `go test -bench` output and reduces each benchmark to
// its median ns/op. GOMAXPROCS suffixes ("-8") are stripped so results
// compare across runner shapes; non-benchmark lines are ignored.
func Summarize(r io.Reader) (map[string]*Result, error) {
	sum := make(map[string]*Result)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		name, ns, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		res := sum[name]
		if res == nil {
			res = &Result{Name: name}
			sum[name] = res
		}
		res.Runs++
		res.NsPerOp = append(res.NsPerOp, ns)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, res := range sum {
		res.Median = median(res.NsPerOp)
	}
	return sum, sc.Err()
}

// parseLine extracts (name, ns/op) from one benchmark result line, e.g.
//
//	BenchmarkEngineTick-8   107334   2382 ns/op   16 B/op   1 allocs/op
func parseLine(line string) (string, float64, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", 0, false
	}
	name := f[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	for i := 2; i+1 < len(f); i++ {
		if f[i+1] == "ns/op" {
			ns, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return "", 0, false
			}
			return name, ns, true
		}
	}
	return "", 0, false
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// loadBaseline reads a previous summary; a missing or empty file yields a
// nil map, which Gate treats as "nothing to compare against".
func loadBaseline(path string) (map[string]*Result, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(strings.TrimSpace(string(b))) == 0 {
		return nil, nil
	}
	var base map[string]*Result
	if err := json.Unmarshal(b, &base); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	return base, nil
}

// SpeedupGate compares two benchmarks measured in the same run and reports
// whether median(base)/median(test) meets the minimum speedup. Unlike the
// cross-branch regression Gate, both benchmarks must be present — the pair
// travels together in one bench invocation, so an absent side means the
// gate is misconfigured, not that there is nothing to compare.
func SpeedupGate(sum map[string]*Result, baseName, testName string, minSpeedup float64) (string, bool) {
	b, ok := sum[baseName]
	if !ok || b.Median <= 0 {
		return fmt.Sprintf("benchgate: FAIL: speedup base benchmark %s not found in input", baseName), false
	}
	tst, ok := sum[testName]
	if !ok || tst.Median <= 0 {
		return fmt.Sprintf("benchgate: FAIL: speedup test benchmark %s not found in input", testName), false
	}
	ratio := b.Median / tst.Median
	verdict := "ok"
	pass := ratio >= minSpeedup
	if !pass {
		verdict = fmt.Sprintf("FAIL (need >= %.2fx)", minSpeedup)
	}
	return fmt.Sprintf("benchgate: %s/%s: %.1f ns/op / %.1f ns/op = %.2fx %s",
		baseName, testName, b.Median, tst.Median, ratio, verdict), pass
}

// LatencyGate holds a saload report against the server-load job's bars:
// p99 latency, achieved throughput, genuine 5xx count, and transport
// errors. An empty report (no 2xx latencies at all) is a hard failure — a
// load test that measured nothing gates nothing.
func LatencyGate(rep server.LoadReport, maxP99 time.Duration, minRPS float64, max5xx int) (string, bool) {
	var fails []string
	if rep.Latency.Count == 0 {
		fails = append(fails, "no successful requests measured")
	}
	if maxP99 > 0 && rep.Latency.P99 > float64(maxP99) {
		fails = append(fails, fmt.Sprintf("p99 %s > limit %s", time.Duration(rep.Latency.P99), maxP99))
	}
	if minRPS > 0 && rep.AchievedRPS < minRPS {
		fails = append(fails, fmt.Sprintf("achieved %.1f rps < floor %.1f", rep.AchievedRPS, minRPS))
	}
	if rep.Errors5xx > max5xx {
		fails = append(fails, fmt.Sprintf("%d genuine 5xx > limit %d", rep.Errors5xx, max5xx))
	}
	if rep.TransportErrors > 0 {
		fails = append(fails, fmt.Sprintf("%d transport errors", rep.TransportErrors))
	}
	line := fmt.Sprintf("benchgate: load: %d ok / %d sent (%.1f rps), p99 %s, %d x 429, %d drained, %d x 5xx",
		rep.OK, rep.Sent, rep.AchievedRPS, time.Duration(rep.Latency.P99), rep.Rejected429, rep.Drained503, rep.Errors5xx)
	if len(fails) > 0 {
		return fmt.Sprintf("%s FAIL: %s", line, strings.Join(fails, "; ")), false
	}
	return line + " ok", true
}

// PromLint validates one or two /metrics scrape files: exposition-format
// syntax, metric-name hygiene, TYPE declarations, duplicate series,
// histogram consistency — and, given two scrapes of the same server in
// order, monotonicity of every counter and histogram series between them.
func PromLint(paths []string) (string, bool) {
	if len(paths) == 0 || len(paths) > 2 {
		return fmt.Sprintf("benchgate: -promlint: want 1 or 2 files, got %d\n", len(paths)), false
	}
	var b strings.Builder
	ok := true
	scrapes := make([]*obs.Scrape, 0, len(paths))
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(&b, "benchgate: promlint: %v\n", err)
			return b.String(), false
		}
		s, err := obs.ParseProm(data)
		if err != nil {
			fmt.Fprintf(&b, "benchgate: promlint: %s: %v\n", path, err)
			return b.String(), false
		}
		if problems := s.Lint(); len(problems) > 0 {
			ok = false
			for _, p := range problems {
				fmt.Fprintf(&b, "benchgate: promlint: %s: %s\n", path, p)
			}
		} else {
			fmt.Fprintf(&b, "benchgate: promlint: %s: %d samples ok\n", path, len(s.Samples))
		}
		scrapes = append(scrapes, s)
	}
	if len(scrapes) == 2 {
		if problems := obs.CheckMonotonic(scrapes[0], scrapes[1]); len(problems) > 0 {
			ok = false
			for _, p := range problems {
				fmt.Fprintf(&b, "benchgate: promlint: %s -> %s: %s\n", paths[0], paths[1], p)
			}
		} else {
			fmt.Fprintf(&b, "benchgate: promlint: counters monotonic across scrapes\n")
		}
	}
	return b.String(), ok
}

// Gate compares the gate benchmark's median against the baseline and
// reports whether the change is within maxRegress.
func Gate(sum, base map[string]*Result, gate string, maxRegress float64) (string, bool) {
	cur, ok := sum[gate]
	if !ok {
		return fmt.Sprintf("benchgate: FAIL: gate benchmark %s not found in input", gate), false
	}
	old, ok := base[gate]
	if !ok || old.Median <= 0 {
		return fmt.Sprintf("benchgate: no baseline for %s; gate skipped", gate), true
	}
	delta := (cur.Median - old.Median) / old.Median
	verdict := "ok"
	pass := delta <= maxRegress
	if !pass {
		verdict = fmt.Sprintf("FAIL (limit +%.0f%%)", maxRegress*100)
	}
	return fmt.Sprintf("benchgate: %s: %.1f ns/op -> %.1f ns/op (%+.1f%%) %s",
		gate, old.Median, cur.Median, delta*100, verdict), pass
}
