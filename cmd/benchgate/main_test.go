package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"scatteradd/internal/server"
)

const sample = `goos: linux
goarch: amd64
pkg: scatteradd/internal/machine
BenchmarkEngineTick-8   	  107334	      2400 ns/op	      16 B/op	       1 allocs/op
BenchmarkEngineTick-8   	  108000	      2300 ns/op
BenchmarkEngineTick-8   	  107500	      2500 ns/op
BenchmarkSAUnitTick 	 1013354	       209.1 ns/op
PASS
ok  	scatteradd/internal/machine	0.607s
`

func TestSummarize(t *testing.T) {
	sum, err := Summarize(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	et := sum["BenchmarkEngineTick"]
	if et == nil {
		t.Fatal("proc-count suffix not stripped: BenchmarkEngineTick missing")
	}
	if et.Runs != 3 || et.Median != 2400 {
		t.Errorf("EngineTick: runs=%d median=%v, want 3 runs median 2400", et.Runs, et.Median)
	}
	sa := sum["BenchmarkSAUnitTick"]
	if sa == nil || sa.Median != 209.1 {
		t.Errorf("SAUnitTick = %+v, want median 209.1", sa)
	}
	if len(sum) != 2 {
		t.Errorf("got %d benchmarks, want 2", len(sum))
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	scatteradd/internal/machine	0.607s",
		"BenchmarkBroken-8 xyz abc ns/op",
		"Benchmark only three",
	} {
		if _, _, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) accepted, want rejected", line)
		}
	}
}

func TestMedianEvenCount(t *testing.T) {
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("median = %v, want 2.5", m)
	}
}

func gateFixtures(curNs, baseNs float64) (sum, base map[string]*Result) {
	sum = map[string]*Result{"BenchmarkEngineTick": {Name: "BenchmarkEngineTick", Median: curNs}}
	base = map[string]*Result{"BenchmarkEngineTick": {Name: "BenchmarkEngineTick", Median: baseNs}}
	return
}

func TestGate(t *testing.T) {
	tests := []struct {
		name         string
		cur, base    float64
		nilBase      bool
		absentInBase bool
		want         bool
	}{
		{name: "within limit", cur: 2150, base: 2000, want: true},
		{name: "improvement", cur: 1500, base: 2000, want: true},
		{name: "over limit", cur: 2500, base: 2000, want: false},
		{name: "exactly at limit", cur: 2200, base: 2000, want: true},
		{name: "missing baseline file", cur: 2500, nilBase: true, want: true},
		{name: "gate absent in baseline", cur: 2500, absentInBase: true, want: true},
	}
	for _, tc := range tests {
		sum, base := gateFixtures(tc.cur, tc.base)
		if tc.nilBase {
			base = nil
		}
		if tc.absentInBase {
			base = map[string]*Result{}
		}
		msg, ok := Gate(sum, base, "BenchmarkEngineTick", 0.10)
		if ok != tc.want {
			t.Errorf("%s: Gate = %v (%s), want %v", tc.name, ok, msg, tc.want)
		}
	}
}

func TestSpeedupGate(t *testing.T) {
	mk := func(baseNs, testNs float64) map[string]*Result {
		return map[string]*Result{
			"BenchmarkFig13Shard1":  {Name: "BenchmarkFig13Shard1", Median: baseNs},
			"BenchmarkFig13Sharded": {Name: "BenchmarkFig13Sharded", Median: testNs},
		}
	}
	tests := []struct {
		name           string
		base, test     float64
		min            float64
		dropBase, drop bool
		want           bool
	}{
		{name: "meets target", base: 4000, test: 1800, min: 2.0, want: true},
		{name: "exactly at target", base: 4000, test: 2000, min: 2.0, want: true},
		{name: "below target", base: 4000, test: 2500, min: 2.0, want: false},
		{name: "slowdown", base: 2000, test: 2500, min: 2.0, want: false},
		{name: "missing base is hard fail", base: 4000, test: 2000, min: 2.0, dropBase: true, want: false},
		{name: "missing test is hard fail", base: 4000, test: 2000, min: 2.0, drop: true, want: false},
	}
	for _, tc := range tests {
		sum := mk(tc.base, tc.test)
		if tc.dropBase {
			delete(sum, "BenchmarkFig13Shard1")
		}
		if tc.drop {
			delete(sum, "BenchmarkFig13Sharded")
		}
		msg, ok := SpeedupGate(sum, "BenchmarkFig13Shard1", "BenchmarkFig13Sharded", tc.min)
		if ok != tc.want {
			t.Errorf("%s: SpeedupGate = %v (%s), want %v", tc.name, ok, msg, tc.want)
		}
	}
}

func TestGateMissingInInput(t *testing.T) {
	sum, base := gateFixtures(2000, 2000)
	delete(sum, "BenchmarkEngineTick")
	if msg, ok := Gate(sum, base, "BenchmarkEngineTick", 0.10); ok {
		t.Errorf("Gate with missing input benchmark passed (%s), want fail", msg)
	}
}

func loadFixture() server.LoadReport {
	return server.LoadReport{
		Sent: 300, OK: 290, AchievedRPS: 29.0,
		Rejected429: 8, Drained503: 2,
		Latency: server.LatencySummary{Count: 290, P99: float64(800 * time.Millisecond)},
	}
}

func TestLatencyGate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*server.LoadReport)
		maxP99 time.Duration
		minRPS float64
		max5xx int
		want   bool
	}{
		{name: "healthy run", maxP99: 2 * time.Second, minRPS: 10, want: true},
		{name: "p99 over limit", maxP99: 500 * time.Millisecond, want: false},
		{name: "p99 ungated when zero", maxP99: 0, want: true},
		{name: "rps under floor", minRPS: 50, want: false},
		{name: "genuine 5xx over limit", mutate: func(r *server.LoadReport) { r.Errors5xx = 1 }, want: false},
		{name: "5xx within allowance", mutate: func(r *server.LoadReport) { r.Errors5xx = 1 }, max5xx: 1, want: true},
		{name: "pushback never gates", mutate: func(r *server.LoadReport) { r.Rejected429 = 200; r.Drained503 = 50 }, want: true},
		{name: "transport errors are hard fail", mutate: func(r *server.LoadReport) { r.TransportErrors = 1 }, want: false},
		{name: "empty run gates nothing", mutate: func(r *server.LoadReport) { r.Latency = server.LatencySummary{}; r.OK = 0 }, want: false},
	}
	for _, tc := range tests {
		rep := loadFixture()
		if tc.mutate != nil {
			tc.mutate(&rep)
		}
		msg, ok := LatencyGate(rep, tc.maxP99, tc.minRPS, tc.max5xx)
		if ok != tc.want {
			t.Errorf("%s: LatencyGate = %v (%s), want %v", tc.name, ok, msg, tc.want)
		}
	}
}

const goodScrape1 = `# HELP scatteradd_http_requests_total Requests completed.
# TYPE scatteradd_http_requests_total counter
scatteradd_http_requests_total{endpoint="/v1/run",class="2xx"} 10
# HELP scatteradd_http_request_duration_seconds Total request duration.
# TYPE scatteradd_http_request_duration_seconds histogram
scatteradd_http_request_duration_seconds_bucket{endpoint="/v1/run",le="0.1"} 8
scatteradd_http_request_duration_seconds_bucket{endpoint="/v1/run",le="+Inf"} 10
scatteradd_http_request_duration_seconds_sum{endpoint="/v1/run"} 0.42
scatteradd_http_request_duration_seconds_count{endpoint="/v1/run"} 10
`

const goodScrape2 = `# HELP scatteradd_http_requests_total Requests completed.
# TYPE scatteradd_http_requests_total counter
scatteradd_http_requests_total{endpoint="/v1/run",class="2xx"} 14
# HELP scatteradd_http_request_duration_seconds Total request duration.
# TYPE scatteradd_http_request_duration_seconds histogram
scatteradd_http_request_duration_seconds_bucket{endpoint="/v1/run",le="0.1"} 11
scatteradd_http_request_duration_seconds_bucket{endpoint="/v1/run",le="+Inf"} 14
scatteradd_http_request_duration_seconds_sum{endpoint="/v1/run"} 0.61
scatteradd_http_request_duration_seconds_count{endpoint="/v1/run"} 14
`

func writeScrape(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPromLintClean(t *testing.T) {
	p1 := writeScrape(t, "s1.txt", goodScrape1)
	msg, ok := PromLint([]string{p1})
	if !ok {
		t.Fatalf("clean scrape failed lint:\n%s", msg)
	}
	if !strings.Contains(msg, "samples ok") {
		t.Fatalf("message: %s", msg)
	}
}

func TestPromLintMonotonicPair(t *testing.T) {
	p1 := writeScrape(t, "s1.txt", goodScrape1)
	p2 := writeScrape(t, "s2.txt", goodScrape2)
	msg, ok := PromLint([]string{p1, p2})
	if !ok {
		t.Fatalf("monotonic pair failed:\n%s", msg)
	}
	if !strings.Contains(msg, "monotonic") {
		t.Fatalf("message: %s", msg)
	}
	// Reversed order: the counters "go backwards".
	if msg, ok := PromLint([]string{p2, p1}); ok {
		t.Fatalf("reversed scrapes passed:\n%s", msg)
	}
}

func TestPromLintViolations(t *testing.T) {
	bad := writeScrape(t, "bad.txt", "# TYPE hits counter\nhits 3\nhits 3\n")
	msg, ok := PromLint([]string{bad})
	if ok {
		t.Fatalf("bad scrape passed:\n%s", msg)
	}
	if !strings.Contains(msg, "_total") || !strings.Contains(msg, "duplicate") {
		t.Fatalf("message: %s", msg)
	}
}

func TestPromLintUnparseable(t *testing.T) {
	bad := writeScrape(t, "bad.txt", "m{a=unquoted} 1\n")
	if msg, ok := PromLint([]string{bad}); ok {
		t.Fatalf("unparseable scrape passed:\n%s", msg)
	}
	if _, ok := PromLint([]string{filepath.Join(t.TempDir(), "missing.txt")}); ok {
		t.Fatal("missing file passed")
	}
	if _, ok := PromLint(nil); ok {
		t.Fatal("empty file list passed")
	}
}
