// Command spanlint sanity-checks Chrome trace-event / Perfetto JSON files
// produced by the span exporter (sabench -span-out, span.WriteTraceEvents,
// the daemon's /debug/slowz). It verifies the trace-event envelope and the
// per-phase required fields so CI can gate exported artifacts before anyone
// tries to load a broken file in ui.perfetto.dev.
//
// Usage:
//
//	spanlint FILE...
//
// Gzipped inputs (such as `curl /debug/slowz?gzip=1` artifacts) are detected
// by magic number and decompressed transparently. Exits non-zero if any file
// fails validation.
package main

import (
	"bytes"
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"os"

	"scatteradd/internal/span"
)

// maybeGunzip transparently decompresses gzip input, detected by the
// two-byte magic header; anything else passes through untouched.
func maybeGunzip(data []byte) ([]byte, error) {
	if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
		return data, nil
	}
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("gzip: %v", err)
	}
	defer zr.Close()
	plain, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("gunzip: %v", err)
	}
	return plain, nil
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: spanlint FILE...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	failed := 0
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spanlint: %v\n", err)
			failed++
			continue
		}
		if data, err = maybeGunzip(data); err != nil {
			fmt.Fprintf(os.Stderr, "spanlint: %s: %v\n", path, err)
			failed++
			continue
		}
		events, err := span.ValidateTraceJSON(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spanlint: %s: %v\n", path, err)
			failed++
			continue
		}
		fmt.Printf("%s: OK (%d trace events)\n", path, events)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
