// Command spanlint sanity-checks Chrome trace-event / Perfetto JSON files
// produced by the span exporter (sabench -span-out, span.WriteTraceEvents).
// It verifies the trace-event envelope and the per-phase required fields so
// CI can gate exported artifacts before anyone tries to load a broken file
// in ui.perfetto.dev.
//
// Usage:
//
//	spanlint FILE...
//
// Exits non-zero if any file fails validation.
package main

import (
	"flag"
	"fmt"
	"os"

	"scatteradd/internal/span"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: spanlint FILE...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	failed := 0
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spanlint: %v\n", err)
			failed++
			continue
		}
		events, err := span.ValidateTraceJSON(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spanlint: %s: %v\n", path, err)
			failed++
			continue
		}
		fmt.Printf("%s: OK (%d trace events)\n", path, events)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
