package main

import (
	"bytes"
	"compress/gzip"
	"testing"

	"scatteradd/internal/obs"
	"scatteradd/internal/span"
)

func sampleTrace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	tr := obs.SlowTrace{
		ID: "r-1", Endpoint: "/v1/run", Figure: "fig6", Cache: "miss", Code: 200,
		Total: 1e7,
	}
	tr.Stages[obs.StageRun] = obs.StageSpan{Dur: 1e7, Visited: true}
	if err := obs.WriteSlowPerfetto(&buf, []obs.SlowTrace{tr}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestMaybeGunzipPassthrough(t *testing.T) {
	plain := sampleTrace(t)
	got, err := maybeGunzip(plain)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plain) {
		t.Fatal("plain input was altered")
	}
	if _, err := span.ValidateTraceJSON(got); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestMaybeGunzipDecompresses(t *testing.T) {
	plain := sampleTrace(t)
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write(plain)
	zw.Close()

	got, err := maybeGunzip(gz.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plain) {
		t.Fatal("gunzip does not round-trip")
	}
	if _, err := span.ValidateTraceJSON(got); err != nil {
		t.Fatalf("validate after gunzip: %v", err)
	}
}

func TestMaybeGunzipCorrupt(t *testing.T) {
	// Valid magic, garbage body.
	if _, err := maybeGunzip([]byte{0x1f, 0x8b, 0xff, 0x00, 0x01}); err == nil {
		t.Fatal("corrupt gzip accepted")
	}
	// Short non-gzip inputs pass through.
	if got, err := maybeGunzip([]byte{0x7b}); err != nil || len(got) != 1 {
		t.Fatalf("short input: %v %v", got, err)
	}
}
