// Command scatteradd regenerates the tables and figures of "Scatter-Add in
// Data Parallel Architectures" (HPCA 2005) on the simulated machine.
//
// Usage:
//
//	scatteradd [flags] <experiment>...
//
// Experiments: table1, fig6, fig7, fig8, fig9, fig10, fig11, fig12, fig13,
// fig14, ablations, all.
//
// Flags:
//
//	-scale N      divide dataset sizes by N for a quick run (default 1 = paper scale)
//	-jobs N       run up to N independent simulations concurrently (default NumCPU;
//	              1 = sequential; output is byte-identical for every N)
//	-shards N     split each simulation's compute across N worker shards
//	              advancing in lockstep: multi-node figures shard per-node
//	              engines, single-machine figures shard the machine's bank
//	              clusters (output is byte-identical for every N; 1 =
//	              sequential). The default "auto" picks a width from the
//	              CPUs left over after the -jobs pool and logs the choice —
//	              with the default one-worker-per-CPU -jobs it resolves to 1.
//	-seed N       perturb every workload seed (default 0 = the paper's fixed seeds)
//	-csv          emit CSV instead of aligned text
//	-stats        append a hardware performance-counter appendix to each table
//	-spans        append a sampled request-lifecycle latency-attribution
//	              appendix to each table (see -span-rate)
//	-span-rate N  sample 1 in N issued memory operations for -spans (default 16)
//	-faults X     inject the default chaos fault mix scaled by X in [0,1]
//	              (0 = off; 1 = full chaos; results stay bit-exact — faults
//	              cost cycles, never correctness)
//	-fault-seed N override the fault injector's seed (with -faults)
//	-checkpoint D snapshot each completed figure under directory D and
//	              resume an interrupted sweep from the snapshots
//	-topology T   restrict fig14 to one interconnect configuration
//	              (flat, tree, tree+comb, mesh, mesh+comb; default = sweep all)
//	-fanin N      switch fan-in for fig14 tree topologies (default 0 = 4)
//
// Profiling the simulator itself: -pprof-http ADDR serves net/http/pprof,
// -cpuprofile/-memprofile FILE write pprof profiles, -trace-out FILE writes
// a runtime execution trace (go tool trace).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"time"

	"scatteradd"
	"scatteradd/internal/prof"
)

func main() {
	scale := flag.Int("scale", 1, "divide dataset sizes by N (1 = full paper scale)")
	jobs := flag.Int("jobs", runtime.NumCPU(), "max concurrent simulations (1 = sequential)")
	shards := flag.String("shards", "auto", "worker shards inside each simulation (N >= 1, or \"auto\" = CPUs left over after -jobs; 1 with the default -jobs)")
	seed := flag.Uint64("seed", 0, "perturb workload seeds (0 = the paper's fixed seeds)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	doPlot := flag.Bool("plot", false, "also render ASCII charts of the figures")
	withStats := flag.Bool("stats", false, "append a hardware performance-counter appendix to each table")
	withSpans := flag.Bool("spans", false, "append a sampled request-lifecycle latency appendix to each table")
	spanRate := flag.Int("span-rate", 16, "sample 1 in N issued memory operations for -spans")
	legacy := flag.Bool("legacy", false, "per-cycle engine stepping instead of quiescence fast-forward (identical output, slower)")
	faults := flag.Float64("faults", 0, "inject the default chaos fault mix scaled by X in [0,1] (0 = off)")
	faultSeed := flag.Uint64("fault-seed", 0, "override the fault injector seed (0 = default; needs -faults)")
	checkpoint := flag.String("checkpoint", "", "directory for figure checkpoints (resume interrupted sweeps)")
	topology := flag.String("topology", "", "restrict fig14 to one interconnect configuration (flat, tree, tree+comb, mesh, mesh+comb)")
	fanin := flag.Int("fanin", 0, "switch fan-in for fig14 tree topologies (0 = default 4)")
	profCfg := prof.Flags(flag.CommandLine)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}
	if *jobs < 1 {
		fmt.Fprintf(os.Stderr, "scatteradd: -jobs %d invalid (want >= 1)\n", *jobs)
		os.Exit(2)
	}
	nShards, err := parseShards(*shards, *jobs, *scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scatteradd: %v\n", err)
		os.Exit(2)
	}
	if *spanRate < 1 {
		fmt.Fprintf(os.Stderr, "scatteradd: -span-rate %d invalid (want >= 1)\n", *spanRate)
		os.Exit(2)
	}
	if *faults < 0 || *faults > 1 {
		fmt.Fprintf(os.Stderr, "scatteradd: -faults %g invalid (want 0..1)\n", *faults)
		os.Exit(2)
	}
	if *fanin != 0 && *fanin < 2 {
		fmt.Fprintf(os.Stderr, "scatteradd: -fanin %d invalid (want 0 or >= 2)\n", *fanin)
		os.Exit(2)
	}
	if *topology != "" {
		if _, err := scatteradd.ParseTopology(*topology, *fanin); err != nil {
			fmt.Fprintf(os.Stderr, "scatteradd: %v\n", err)
			os.Exit(2)
		}
	}
	var fc scatteradd.FaultConfig
	if *faults > 0 {
		fc = scatteradd.DefaultChaosFaults().Scale(*faults)
		if *faultSeed != 0 {
			fc.Seed = *faultSeed
		}
	}
	sess, err := prof.Start(*profCfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scatteradd: %v\n", err)
		os.Exit(1)
	}
	if addr := sess.HTTPAddr(); addr != "" {
		fmt.Fprintf(os.Stderr, "scatteradd: pprof at http://%s/debug/pprof/\n", addr)
	}
	o := scatteradd.ExpOptions{
		Scale: *scale, Jobs: *jobs, Shards: nShards, Seed: *seed,
		CollectStats: *withStats, CollectSpans: *withSpans, SpanRate: *spanRate,
		Legacy: *legacy,
		Faults: fc, CheckpointDir: *checkpoint,
		Topology: *topology, FanIn: *fanin,
	}
	for _, name := range flag.Args() {
		if err := run(name, o, *csv, *doPlot); err != nil {
			sess.Stop()
			fmt.Fprintf(os.Stderr, "scatteradd: %v\n", err)
			os.Exit(1)
		}
	}
	if err := sess.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "scatteradd: %v\n", err)
		os.Exit(1)
	}
}

// parseShards resolves the -shards flag: a positive integer passes through,
// "auto" asks the experiment layer's policy for a width (logged, since the
// choice depends on this host's CPU count and the -jobs pool).
func parseShards(s string, jobs, scale int) (int, error) {
	if s == "auto" {
		n := scatteradd.AutoShards(jobs, scale)
		fmt.Fprintf(os.Stderr, "scatteradd: -shards auto resolved to %d (%d CPUs, %d jobs)\n",
			n, runtime.NumCPU(), jobs)
		return n, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("-shards %q invalid (want an integer >= 1 or \"auto\")", s)
	}
	return n, nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: scatteradd [-scale N] [-jobs N] [-shards N|auto] [-seed N] [-csv] [-stats] [-spans] [-faults X] [-checkpoint DIR] <experiment>...

experiments:
  table1           machine parameters (paper Table 1)
  fig6 .. fig13    regenerate the corresponding figure
  fig14            interconnect scale-out extension (see -topology, -fanin)
  ablations        design-choice studies beyond the paper
  report           regenerate everything + check the paper's claims (markdown)
  all              everything above

`)
	flag.PrintDefaults()
}

func run(name string, o scatteradd.ExpOptions, csv, doPlot bool) error {
	emit := func(t scatteradd.ExpTable) {
		if csv {
			fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
		} else {
			fmt.Println(t)
		}
	}
	figure := func(n int) error {
		start := time.Now()
		t, err := scatteradd.Figure(n, o)
		if err != nil {
			return err
		}
		emit(t)
		if doPlot {
			fmt.Println(scatteradd.PlotFigure(n, t))
		}
		if !csv {
			fmt.Printf("(regenerated in %.1fs)\n\n", time.Since(start).Seconds())
		}
		return nil
	}
	switch name {
	case "table1":
		emit(scatteradd.Table1())
	case "fig6":
		return figure(6)
	case "fig7":
		return figure(7)
	case "fig8":
		return figure(8)
	case "fig9":
		return figure(9)
	case "fig10":
		return figure(10)
	case "fig11":
		return figure(11)
	case "fig12":
		return figure(12)
	case "fig13":
		return figure(13)
	case "fig14":
		return figure(14)
	case "ablations":
		for _, t := range scatteradd.Ablations(o) {
			emit(t)
		}
	case "report":
		md, checks := scatteradd.Report(o)
		fmt.Print(md)
		failed := 0
		for _, c := range checks {
			if !c.Pass {
				failed++
			}
		}
		if failed > 0 {
			return fmt.Errorf("%d of %d claim checks failed", failed, len(checks))
		}
		fmt.Fprintf(os.Stderr, "all %d claim checks passed\n", len(checks))
	case "all":
		emit(scatteradd.Table1())
		for n := 6; n <= 14; n++ {
			if err := figure(n); err != nil {
				return err
			}
		}
		for _, t := range scatteradd.Ablations(o) {
			emit(t)
		}
	default:
		return fmt.Errorf("unknown experiment %q (want table1, fig6..fig14, ablations, all)", name)
	}
	return nil
}
