// Command saload load-tests a scatteraddd daemon: it replays a mixed
// schedule of simulation specs at a fixed target request rate (open loop)
// and writes a latency/status report that cmd/benchgate's -latency mode can
// gate CI on.
//
//	saload -addr http://127.0.0.1:8080 -rps 40 -duration 30s \
//	       -mix mix.json -out LOAD_PR.json
//
// The mix file is a JSON array of weighted specs:
//
//	[
//	  {"weight": 8, "spec": {"figure": "fig6",  "scale": 8, "format": "csv"}},
//	  {"weight": 1, "spec": {"figure": "fig13", "scale": 8}}
//	]
//
// -probe sends a single request instead and writes the raw response body to
// stdout (exit 1 on any non-200) — CI uses it to hold the daemon's bytes
// against the scatteradd CLI's.
//
// -scrape pulls the daemon's /metrics before and after the run and
// cross-checks the server-side request/error/cache counters against this
// client's own accounting (zero drift required); discrepancies land in the
// report's scrape_problems and flip the exit code to 1. It is CI's proof
// that the daemon's telemetry is truthful, not just present.
//
// Accounting follows the server's overload semantics: 429s (admission or
// quota pushback) and drain 503s (the X-Draining header) are expected
// behavior counted separately; errors_5xx is genuine failure only, so a
// zero-5xx gate holds across a graceful drain.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"scatteradd/internal/obs"
	"scatteradd/internal/server"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "scatteraddd base URL")
	spec := flag.String("spec", "", "single spec JSON to replay (exclusive with -mix)")
	mix := flag.String("mix", "", "weighted spec mix file (exclusive with -spec)")
	rps := flag.Float64("rps", 20, "target request rate (open loop)")
	duration := flag.Duration("duration", 10*time.Second, "how long to issue requests")
	maxInflight := flag.Int("max-inflight", 64, "client-side in-flight cap; schedule ticks beyond it are shed")
	token := flag.String("token", "", "X-API-Token header (quota tenant)")
	out := flag.String("out", "", "report output file (default stdout)")
	probe := flag.Bool("probe", false, "send one request, write its body to stdout, exit 1 on non-200")
	scrape := flag.Bool("scrape", false, "scrape /metrics before and after the run and cross-check server counters against this report")
	flag.Parse()

	specs, err := loadSpecs(*spec, *mix)
	if err != nil {
		fatal(err)
	}
	if *probe {
		os.Exit(runProbe(*addr, *token, specs[0]))
	}
	if *rps <= 0 {
		fatal(fmt.Errorf("-rps %g: want > 0", *rps))
	}
	var before *obs.Scrape
	if *scrape {
		if before, err = fetchScrape(*addr); err != nil {
			fatal(fmt.Errorf("-scrape: before-run scrape: %w", err))
		}
	}
	rep := runLoad(*addr, *token, specs, *rps, *duration, *maxInflight)
	exitCode := 0
	if *scrape {
		rep.ScrapeChecked = true
		rep.ScrapeProblems = crossCheck(*addr, before, rep)
		if len(rep.ScrapeProblems) > 0 {
			exitCode = 1
			for _, p := range rep.ScrapeProblems {
				fmt.Fprintf(os.Stderr, "saload: scrape drift: %s\n", p)
			}
		} else {
			fmt.Fprintf(os.Stderr, "saload: scrape cross-check: zero drift over %d requests\n", rep.Sent)
		}
	}
	js, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	js = append(js, '\n')
	if *out == "" {
		os.Stdout.Write(js)
	} else if err := os.WriteFile(*out, js, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "saload: %d sent, %d ok, %d shed; p99 %s\n",
		rep.Sent, rep.OK, rep.Shed, time.Duration(rep.Latency.P99))
	os.Exit(exitCode)
}

// fetchScrape pulls and parses the daemon's /metrics exposition.
func fetchScrape(addr string) (*obs.Scrape, error) {
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics status %d: %s", resp.StatusCode, body)
	}
	return obs.ParseProm(body)
}

// crossCheck re-scrapes until the server's counters agree with the client's
// report, returning the surviving discrepancies. The retry loop absorbs
// accounting lag: the server folds a request into its counters after the
// response bytes reach the client, so the instant after the last response is
// received the last few requests may not be counted yet. Genuine drift is
// stable and survives every retry.
func crossCheck(addr string, before *obs.Scrape, rep server.LoadReport) []string {
	var problems []string
	for attempt := 0; attempt < 30; attempt++ {
		after, err := fetchScrape(addr)
		if err != nil {
			return []string{fmt.Sprintf("after-run scrape: %v", err)}
		}
		problems = server.CheckScrape(before, after, rep)
		if len(problems) == 0 {
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return problems
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "saload: %v\n", err)
	os.Exit(2)
}

// loadSpecs resolves -spec/-mix into the replay schedule: each entry's spec
// body repeated weight times, validated client-side so a typoed field fails
// fast instead of burning a 30s CI load run on 400s.
func loadSpecs(spec, mix string) ([][]byte, error) {
	switch {
	case spec != "" && mix != "":
		return nil, fmt.Errorf("-spec and -mix are exclusive")
	case spec != "":
		body, err := checkSpec([]byte(spec))
		if err != nil {
			return nil, err
		}
		return [][]byte{body}, nil
	case mix != "":
		data, err := os.ReadFile(mix)
		if err != nil {
			return nil, err
		}
		var entries []struct {
			Weight int             `json:"weight"`
			Spec   json.RawMessage `json:"spec"`
		}
		if err := json.Unmarshal(data, &entries); err != nil {
			return nil, fmt.Errorf("mix %s: %v", mix, err)
		}
		var specs [][]byte
		for i, e := range entries {
			body, err := checkSpec(e.Spec)
			if err != nil {
				return nil, fmt.Errorf("mix entry %d: %v", i, err)
			}
			if e.Weight < 1 {
				e.Weight = 1
			}
			for j := 0; j < e.Weight; j++ {
				specs = append(specs, body)
			}
		}
		if len(specs) == 0 {
			return nil, fmt.Errorf("mix %s: no specs", mix)
		}
		return specs, nil
	default:
		return nil, fmt.Errorf("one of -spec or -mix is required")
	}
}

// checkSpec validates one spec's JSON against the server's wire type with
// the same unknown-field strictness the server applies.
func checkSpec(raw []byte) ([]byte, error) {
	var sp server.Spec
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("spec %s: %v", raw, err)
	}
	return raw, nil
}

// runProbe sends one request and writes the body through verbatim.
func runProbe(addr, token string, spec []byte) int {
	resp, body, err := send(addr, token, spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "saload: probe: %v\n", err)
		return 1
	}
	os.Stdout.Write(body)
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "saload: probe: status %d\n", resp.StatusCode)
		return 1
	}
	return 0
}

func send(addr, token string, spec []byte) (*http.Response, []byte, error) {
	req, err := http.NewRequest("POST", addr+"/v1/run", bytes.NewReader(spec))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("X-API-Token", token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, body, err
}

// runLoad drives the open-loop schedule and aggregates the report.
func runLoad(addr, token string, specs [][]byte, rps float64, duration time.Duration, maxInflight int) server.LoadReport {
	rep := server.LoadReport{
		Addr:        addr,
		TargetRPS:   rps,
		DurationSec: duration.Seconds(),
		Status:      make(map[string]int),
		Cache:       make(map[string]int),
	}
	var (
		mu        sync.Mutex
		latencies []time.Duration
		inflight  int
		wg        sync.WaitGroup
	)
	issue := func(spec []byte) {
		defer wg.Done()
		start := time.Now()
		resp, _, err := send(addr, token, spec)
		elapsed := time.Since(start)
		mu.Lock()
		defer mu.Unlock()
		inflight--
		if err != nil {
			rep.TransportErrors++
			return
		}
		rep.Status[strconv.Itoa(resp.StatusCode)]++
		switch {
		case resp.StatusCode < 300:
			rep.OK++
			latencies = append(latencies, elapsed)
			if st := resp.Header.Get("X-Cache"); st != "" {
				rep.Cache[st]++
			}
		case resp.StatusCode == http.StatusTooManyRequests:
			rep.Rejected429++
		case resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("X-Draining") != "":
			rep.Drained503++
		case resp.StatusCode >= 500:
			rep.Errors5xx++
		}
	}

	interval := time.Duration(float64(time.Second) / rps)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.Now().Add(duration)
	for next := 0; time.Now().Before(deadline); next++ {
		<-ticker.C
		mu.Lock()
		if inflight >= maxInflight {
			rep.Shed++
			mu.Unlock()
			continue
		}
		inflight++
		mu.Unlock()
		rep.Sent++
		wg.Add(1)
		go issue(specs[next%len(specs)])
	}
	wg.Wait()
	rep.Latency = server.SummarizeLatencies(latencies)
	rep.AchievedRPS = float64(rep.OK) / duration.Seconds()
	return rep
}
