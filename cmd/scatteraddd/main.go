// Command scatteraddd is the scatter-add simulation daemon: the scatteradd
// CLI's figures as a long-lived multi-tenant HTTP service (internal/server).
//
//	scatteraddd -addr :8080 -workers 4 -queue 64 -cache 256 &
//	curl -s localhost:8080/v1/run -d '{"figure":"fig6","scale":8,"format":"text"}'
//
// Response bodies are byte-identical to the CLI's output for the same
// options ("csv" matches `scatteradd -csv`), whether computed fresh, served
// from the fingerprint-keyed result cache, or coalesced onto an identical
// in-flight request. Overload answers 429 with Retry-After; SIGTERM drains
// gracefully — stop accepting, finish every in-flight request, persist the
// result-cache index (with -cache-dir), then exit 0.
//
// Telemetry (on by default, -telemetry=false turns it off entirely):
//
//	GET /metrics            Prometheus text exposition: stats registries +
//	                        per-endpoint RED metrics with stage histograms
//	GET /debug/slowz        slowest -slow-traces request traces as Perfetto
//	                        JSON (?gzip=1 compressed, ?format=json summaries)
//	GET /buildz             binary identity (version, Go runtime, VCS stamp)
//
// -access-log FILE writes one NDJSON line per /v1/* request (id, tenant,
// figure, fingerprint, stage timings, cache status, outcome); "-" logs to
// stderr. Every response carries X-Request-Id (propagated from the request
// when present) for correlating access-log lines with client-side traces.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"scatteradd/internal/obs"
	"scatteradd/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent simulation workers (0 = NumCPU)")
	queue := flag.Int("queue", 64, "admission queue depth beyond the workers (0 = no waiting room)")
	runJobs := flag.Int("run-jobs", 1, "parallel jobs within one simulation (exp -jobs)")
	cache := flag.Int("cache", 256, "result-cache entries (0 = disabled; identical in-flight requests still coalesce)")
	cacheDir := flag.String("cache-dir", "", "persist the result-cache index here across restarts (optional)")
	quotaRPS := flag.Float64("quota-rps", 0, "per-tenant request rate (0 = quotas off)")
	quotaBurst := flag.Int("quota-burst", 10, "per-tenant token-bucket burst")
	minScale := flag.Int("min-scale", 1, "reject specs with scale below this (larger scale = smaller datasets)")
	maxShards := flag.Int("max-shards", 64, "reject specs with more shards than this")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "maximum time to wait for in-flight requests on shutdown")
	telemetry := flag.Bool("telemetry", true, "RED metrics on /metrics, request tracing, /debug/slowz slow-trace capture")
	slowTraces := flag.Int("slow-traces", 32, "slowest request traces retained for /debug/slowz (0 = none)")
	accessLog := flag.String("access-log", "", "NDJSON access log file, one line per /v1/* request (\"-\" = stderr; implies -telemetry)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "scatteraddd: unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}

	observer, alogClose, err := buildObserver(*telemetry, *slowTraces, *accessLog)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scatteraddd: %v\n", err)
		os.Exit(1)
	}
	if alogClose != nil {
		defer alogClose()
	}

	// The flag's 0 means "cache off"; Config's 0 means "default size".
	cacheEntries := *cache
	if cacheEntries <= 0 {
		cacheEntries = -1
	}
	queueDepth := *queue
	if queueDepth <= 0 {
		queueDepth = -1
	}
	srv := server.New(server.Config{
		Workers:      *workers,
		Queue:        queueDepth,
		RunJobs:      *runJobs,
		CacheEntries: cacheEntries,
		CacheDir:     *cacheDir,
		QuotaRPS:     *quotaRPS,
		QuotaBurst:   *quotaBurst,
		Limits:       server.Limits{MinScale: *minScale, MaxShards: *maxShards},
		Obs:          observer,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scatteraddd: %v\n", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(os.Stderr, "scatteraddd: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "scatteraddd: serve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of draining again

	// Drain sequence: refuse new work (healthz flips to 503), let every
	// in-flight request finish, flush the cache index — then close the
	// listener and idle connections.
	fmt.Fprintln(os.Stderr, "scatteraddd: signal received; draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "scatteraddd: %v\n", err)
		os.Exit(1)
	}
	if err := httpSrv.Shutdown(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "scatteraddd: shutdown: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "scatteraddd: drained; exiting")
}

// buildObserver assembles the telemetry layer from the flags: nil (all hooks
// free) when disabled, otherwise an observer sized by -slow-traces with the
// access log opened if requested. A non-empty -access-log implies telemetry
// even with -telemetry=false — asking for the log is asking for the tracing
// that fills it. The returned close func (nil when no file was opened) flushes
// the log file on exit.
func buildObserver(telemetry bool, slowTraces int, accessLog string) (*obs.Observer, func() error, error) {
	if !telemetry && accessLog == "" {
		return nil, nil, nil
	}
	cfg := obs.Config{SlowN: slowTraces}
	if slowTraces <= 0 {
		cfg.SlowN = -1
	}
	var closeFn func() error
	switch accessLog {
	case "":
	case "-":
		cfg.AccessLog = io.Writer(os.Stderr)
	default:
		f, err := os.OpenFile(accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("-access-log: %w", err)
		}
		cfg.AccessLog = f
		closeFn = f.Close
	}
	return obs.New(cfg), closeFn, nil
}
