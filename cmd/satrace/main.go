// Command satrace generates and inspects scatter-add reference traces —
// the inputs of the paper's multi-node study (§4.5). It can dump a
// workload's scatter-add stream as CSV, print its locality summary, or
// summarize an existing trace file.
//
// Usage:
//
//	satrace [flags] gen        generate a trace and write CSV to -out (or stdout)
//	satrace [flags] summary    generate a trace and print its locality summary
//	satrace -in FILE summary   summarize an existing CSV trace
//
// Flags:
//
//	-workload  narrow | wide | mole | spas   (default narrow)
//	-n         reference count for the histogram workloads (default 65536)
//	-out/-in   file paths (default stdout/none)
package main

import (
	"flag"
	"fmt"
	"os"

	"scatteradd/internal/apps"
	"scatteradd/internal/mem"
	"scatteradd/internal/trace"
	"scatteradd/internal/workload"
)

func main() {
	wl := flag.String("workload", "narrow", "narrow | wide | mole | spas")
	n := flag.Int("n", 65536, "reference count for the histogram workloads")
	out := flag.String("out", "", "output file for gen (default stdout)")
	in := flag.String("in", "", "existing trace CSV for summary")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: satrace [flags] gen|summary")
		os.Exit(2)
	}
	cmd := flag.Arg(0)
	if err := run(cmd, *wl, *n, *out, *in); err != nil {
		fmt.Fprintf(os.Stderr, "satrace: %v\n", err)
		os.Exit(1)
	}
}

func run(cmd, wl string, n int, out, in string) error {
	var recs []trace.Record
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		recs, err = trace.ReadCSV(f)
		if err != nil {
			return err
		}
	} else {
		var err error
		recs, err = generate(wl, n)
		if err != nil {
			return err
		}
	}
	switch cmd {
	case "gen":
		w := os.Stdout
		if out != "" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		return trace.WriteCSV(w, recs)
	case "summary":
		fmt.Println(trace.Summarize(recs))
		return nil
	}
	return fmt.Errorf("unknown command %q (want gen or summary)", cmd)
}

// generate builds one of the §4.5 trace workloads.
func generate(wl string, n int) ([]trace.Record, error) {
	histogram := func(rangeSize int) []trace.Record {
		idx := workload.UniformIndices(n, rangeSize, 0x7ace)
		recs := make([]trace.Record, len(idx))
		for i, x := range idx {
			recs[i] = trace.Record{Kind: mem.AddI64, Addr: mem.Addr(x), Val: mem.I64(1)}
		}
		return recs
	}
	switch wl {
	case "narrow":
		return histogram(256), nil
	case "wide":
		return histogram(1 << 20), nil
	case "mole":
		md := apps.NewMolDyn(903, 8.0, 0x7ace)
		addrs, vals := md.SARefs()
		recs := make([]trace.Record, len(addrs))
		for i := range addrs {
			recs[i] = trace.Record{Kind: mem.AddF64, Addr: addrs[i] - md.ForceBase, Val: vals[i]}
		}
		return recs, nil
	case "spas":
		s := apps.NewSpMV(8, 8, 5, 0x7ace)
		addrs, vals := s.EBERefs()
		recs := make([]trace.Record, len(addrs))
		for i := range addrs {
			recs[i] = trace.Record{Kind: mem.AddF64, Addr: addrs[i] - s.YBase, Val: vals[i]}
		}
		return recs, nil
	}
	return nil, fmt.Errorf("unknown workload %q (want narrow, wide, mole, spas)", wl)
}
