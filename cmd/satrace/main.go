// Command satrace generates and inspects scatter-add reference traces —
// the inputs of the paper's multi-node study (§4.5). It can dump a
// workload's scatter-add stream as CSV, print its locality summary,
// summarize an existing trace file, or replay a trace on the Table 1
// machine and export a performance-counter timeline.
//
// Usage:
//
//	satrace [flags] gen        generate a trace and write CSV to -out (or stdout)
//	satrace [flags] summary    generate a trace and print its locality summary
//	satrace -in FILE summary   summarize an existing CSV trace
//	satrace [flags] stats      replay the trace on the Table 1 machine and
//	                           export the counter timeline to -out (or stdout)
//
// Flags:
//
//	-workload  narrow | wide | mole | spas   (default narrow)
//	-n         reference count for the histogram workloads (default 65536)
//	-out/-in   file paths (default stdout/none)
//	-gzip      gzip-compress gen/stats output
//	-interval  timeline sample interval in cycles for stats (default 1024)
//	-format    timeline format for stats: csv | jsonl (default csv)
package main

import (
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"os"

	"scatteradd/internal/apps"
	"scatteradd/internal/machine"
	"scatteradd/internal/mem"
	"scatteradd/internal/trace"
	"scatteradd/internal/workload"
)

func main() {
	wl := flag.String("workload", "narrow", "narrow | wide | mole | spas")
	n := flag.Int("n", 65536, "reference count for the histogram workloads")
	out := flag.String("out", "", "output file for gen/stats (default stdout)")
	in := flag.String("in", "", "existing trace CSV for summary/stats")
	gz := flag.Bool("gzip", false, "gzip-compress gen/stats output")
	interval := flag.Uint64("interval", 1024, "stats timeline sample interval in cycles")
	format := flag.String("format", "csv", "stats timeline format: csv | jsonl")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: satrace [flags] gen|summary|stats")
		os.Exit(2)
	}
	if *in != "" {
		// The trace comes from the file; generation parameters are ignored.
		flag.Visit(func(fl *flag.Flag) {
			if fl.Name == "workload" || fl.Name == "n" {
				fmt.Fprintf(os.Stderr, "satrace: warning: -%s is ignored when -in is set\n", fl.Name)
			}
		})
	}
	cmd := flag.Arg(0)
	if err := run(cmd, *wl, *n, *out, *in, *gz, *interval, *format); err != nil {
		fmt.Fprintf(os.Stderr, "satrace: %v\n", err)
		os.Exit(1)
	}
}

func run(cmd, wl string, n int, out, in string, gz bool, interval uint64, format string) error {
	var recs []trace.Record
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		recs, err = trace.ReadCSV(f)
		if err != nil {
			return err
		}
	} else {
		var err error
		recs, err = generate(wl, n)
		if err != nil {
			return err
		}
	}
	switch cmd {
	case "gen":
		return writeOut(out, gz, func(w io.Writer) error { return trace.WriteCSV(w, recs) })
	case "summary":
		fmt.Println(trace.Summarize(recs))
		return nil
	case "stats":
		return runStats(recs, out, gz, interval, format)
	}
	return fmt.Errorf("unknown command %q (want gen, summary, or stats)", cmd)
}

// writeOut runs emit against the -out file (or stdout), optionally wrapping
// it in a gzip compressor, and propagates the Close errors — for a buffered
// or compressed stream, that is where a full disk surfaces.
func writeOut(out string, gz bool, emit func(io.Writer) error) error {
	var w io.Writer = os.Stdout
	var closers []io.Closer
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		w = f
		closers = append(closers, f)
	}
	if gz {
		zw := gzip.NewWriter(w)
		w = zw
		// The compressor must flush before the file closes beneath it.
		closers = append([]io.Closer{zw}, closers...)
	}
	err := emit(w)
	for _, c := range closers {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// runStats replays the trace as one scatter-add stream operation on the
// Table 1 machine, sampling the hardware performance counters every
// interval cycles, and exports the timeline.
func runStats(recs []trace.Record, out string, gz bool, interval uint64, format string) error {
	if format != "csv" && format != "jsonl" {
		return fmt.Errorf("unknown -format %q (want csv or jsonl)", format)
	}
	if interval == 0 {
		return fmt.Errorf("-interval must be positive")
	}
	if len(recs) == 0 {
		return fmt.Errorf("empty trace")
	}
	kind := recs[0].Kind
	addrs := make([]mem.Addr, len(recs))
	vals := make([]mem.Word, len(recs))
	for i, r := range recs {
		if r.Kind != kind {
			return fmt.Errorf("mixed-kind trace: record %d is %v, trace started with %v", i, r.Kind, kind)
		}
		addrs[i] = r.Addr
		vals[i] = r.Val
	}
	m := machine.New(machine.DefaultConfig())
	tl := m.StartTimeline(interval)
	m.RunOp(machine.ScatterAdd("trace", kind, addrs, vals))
	m.RunOp(machine.Fence())
	m.StopTimeline()
	// Close the timeline with the final counter values so the last partial
	// interval is not lost.
	if len(tl.Samples) == 0 || tl.Samples[len(tl.Samples)-1].Cycle != m.Now() {
		tl.Record(m.Now(), m.StatsSnapshot())
	}
	return writeOut(out, gz, func(w io.Writer) error { return tl.Write(w, format) })
}

// generate builds one of the §4.5 trace workloads.
func generate(wl string, n int) ([]trace.Record, error) {
	histogram := func(rangeSize int) []trace.Record {
		idx := workload.UniformIndices(n, rangeSize, 0x7ace)
		recs := make([]trace.Record, len(idx))
		for i, x := range idx {
			recs[i] = trace.Record{Kind: mem.AddI64, Addr: mem.Addr(x), Val: mem.I64(1)}
		}
		return recs
	}
	switch wl {
	case "narrow":
		return histogram(256), nil
	case "wide":
		return histogram(1 << 20), nil
	case "mole":
		md := apps.NewMolDyn(903, 8.0, 0x7ace)
		addrs, vals := md.SARefs()
		recs := make([]trace.Record, len(addrs))
		for i := range addrs {
			recs[i] = trace.Record{Kind: mem.AddF64, Addr: addrs[i] - md.ForceBase, Val: vals[i]}
		}
		return recs, nil
	case "spas":
		s := apps.NewSpMV(8, 8, 5, 0x7ace)
		addrs, vals := s.EBERefs()
		recs := make([]trace.Record, len(addrs))
		for i := range addrs {
			recs[i] = trace.Record{Kind: mem.AddF64, Addr: addrs[i] - s.YBase, Val: vals[i]}
		}
		return recs, nil
	}
	return nil, fmt.Errorf("unknown workload %q (want narrow, wide, mole, spas)", wl)
}
