// Package scatteradd is a cycle-level reproduction of "Scatter-Add in Data
// Parallel Architectures" (Ahn, Erez, Dally — HPCA 2005): a simulated
// Merrimac-like stream processor whose memory system performs atomic
// data-parallel read-modify-write operations in hardware scatter-add units,
// together with the paper's software alternatives (sort + segmented scan,
// privatization, coloring), its three evaluation applications (histogram,
// sparse matrix-vector multiply, molecular dynamics), a multi-node model
// with cache combining, and runners that regenerate every table and figure
// of the paper's evaluation.
//
// # Quick start
//
//	m := scatteradd.NewMachine(scatteradd.DefaultConfig())
//	data := []int{3, 1, 3, 7, 3, 1}
//	bins, res := scatteradd.HistogramI64(m, data, 8)
//	fmt.Println(bins, res.Cycles)
//
// The simulator is functional as well as timed: scatter-add results are
// computed by the simulated hardware and can be read back from the
// machine's memory, so performance experiments double as correctness
// checks.
//
// Lower-level building blocks live in the internal packages and are
// re-exported here: machine configuration and stream operations
// (LoadStream, Gather, ScatterAdd, Kernel, ...), the software scatter-add
// methods (SortScan, Privatize, Colored), the evaluation applications
// (NewHistogram, NewSpMV, NewMolDyn), the multi-node system (NewMultiNode),
// and the experiment runners (Figure, Table1).
package scatteradd

import (
	"fmt"

	"scatteradd/internal/apps"
	"scatteradd/internal/exp"
	"scatteradd/internal/machine"
	"scatteradd/internal/mem"
	"scatteradd/internal/multinode"
	"scatteradd/internal/saunit"
	"scatteradd/internal/softscatter"
	"scatteradd/internal/stream"
)

// Core memory-model types.
type (
	// Addr is a word-granular memory address.
	Addr = mem.Addr
	// Word is the raw 64-bit contents of one memory word.
	Word = mem.Word
	// Kind identifies a memory operation (Read, Write, AddF64, ...).
	Kind = mem.Kind
)

// Memory operation kinds. AddF64 and AddI64 are the paper's scatter-add;
// Min/Max/Mul are the §3.3 extensions; FetchAdd* implement the
// data-parallel Fetch&Op with a return path.
const (
	Read        = mem.Read
	Write       = mem.Write
	AddF64      = mem.AddF64
	AddI64      = mem.AddI64
	MinF64      = mem.MinF64
	MaxF64      = mem.MaxF64
	MulF64      = mem.MulF64
	MinI64      = mem.MinI64
	MaxI64      = mem.MaxI64
	FetchAddF64 = mem.FetchAddF64
	FetchAddI64 = mem.FetchAddI64
)

// Word conversions.
var (
	// F64 converts a float64 to its Word representation.
	F64 = mem.F64
	// AsF64 converts a Word to float64.
	AsF64 = mem.AsF64
	// I64 converts an int64 to its Word representation.
	I64 = mem.I64
	// AsI64 converts a Word to int64.
	AsI64 = mem.AsI64
)

// Machine model.
type (
	// Config describes one simulated node (Table 1 defaults).
	Config = machine.Config
	// UniformMemConfig selects the cache-less sensitivity-study memory.
	UniformMemConfig = machine.UniformMemConfig
	// Machine is one simulated stream-processor node.
	Machine = machine.Machine
	// Op is one stream operation (kernel or memory transfer).
	Op = machine.Op
	// Result carries cycles, FP operations, and memory references.
	Result = machine.Result
	// Response is a completed read or fetch-and-op.
	Response = mem.Response
)

// DefaultConfig returns the paper's Table 1 machine configuration.
func DefaultConfig() Config { return machine.DefaultConfig() }

// NewMachine constructs a simulated node.
func NewMachine(cfg Config) *Machine { return machine.New(cfg) }

// Stream-operation constructors.
var (
	// LoadStream reads n consecutive words.
	LoadStream = machine.LoadStream
	// StoreStream writes consecutive words.
	StoreStream = machine.StoreStream
	// Gather reads an address vector (indexed load).
	Gather = machine.Gather
	// Scatter writes an address vector (indexed store).
	Scatter = machine.Scatter
	// ScatterAdd atomically combines values into memory (the paper's
	// primitive; pass a 1-element value slice to broadcast a scalar).
	ScatterAdd = machine.ScatterAdd
	// Kernel models a compute kernel by FP operations and SRF traffic.
	Kernel = machine.Kernel
	// IntKernel models a non-FP compute kernel.
	IntKernel = machine.IntKernel
	// Fence waits for all outstanding (including Async) memory streams.
	Fence = machine.Fence
)

// Stream pipelining (software pipelining over the two address generators).
var (
	// StreamPipeline processes n elements in chunks, overlapping each
	// chunk's asynchronous memory operations with later chunks' work.
	StreamPipeline = stream.Pipeline
	// GatherComputeScatterAdd builds the canonical three-phase chunk
	// (synchronous gather, kernel, asynchronous scatter-add).
	GatherComputeScatterAdd = stream.GatherComputeScatterAdd
)

// StreamChunkFunc produces the operations of one pipeline chunk.
type StreamChunkFunc = stream.ChunkFunc

// Software scatter-add methods (§2.1).
var (
	// SortScan performs scatter-add by batched bitonic sort + segmented
	// scan (batch 0 selects the paper's 256).
	SortScan = softscatter.SortScan
	// Privatize performs scatter-add by privatization (O(m*n)).
	Privatize = softscatter.Privatize
	// Colored performs scatter-add using a precomputed collision-free
	// coloring.
	Colored = softscatter.Colored
)

// Evaluation applications (§4.1).
type (
	// Histogram is the binning workload of Figures 6-8.
	Histogram = apps.Histogram
	// SpMV is the sparse matrix-vector workload of Figure 9.
	SpMV = apps.SpMV
	// MolDyn is the molecular-dynamics workload of Figure 10.
	MolDyn = apps.MolDyn
)

var (
	// NewHistogram builds n uniform indices over rangeSize bins.
	NewHistogram = apps.NewHistogram
	// NewSpMV builds the synthetic finite-element SpMV workload.
	NewSpMV = apps.NewSpMV
	// NewMolDyn builds the water-box molecular-dynamics workload.
	NewMolDyn = apps.NewMolDyn
)

// Multi-node system (§3.2, §4.5).
type (
	// MultiNodeConfig describes the multi-node system.
	MultiNodeConfig = multinode.Config
	// MultiNode is the crossbar-connected multi-node machine.
	MultiNode = multinode.System
	// MultiNodeRef is one scatter-add reference of a trace.
	MultiNodeRef = multinode.Ref
	// MultiNodeResult reports a trace replay.
	MultiNodeResult = multinode.Result
)

// DefaultMultiNodeConfig returns nodes Table 1 nodes over a crossbar with
// the given per-port bandwidth in words/cycle (1 = the paper's low
// configuration, 8 = high), each owning span words of the address space.
func DefaultMultiNodeConfig(nodes, wordsPerCyc int, span Addr) MultiNodeConfig {
	return multinode.DefaultConfig(nodes, wordsPerCyc, span)
}

// NewMultiNode constructs the multi-node system for traces of the given
// combine kind.
func NewMultiNode(cfg MultiNodeConfig, kind Kind) *MultiNode {
	return multinode.New(cfg, kind)
}

// AreaEstimate returns the scatter-add hardware area in mm² (90 nm) and the
// fraction of a 10x10 mm die, per the paper's §3.2 estimate.
var AreaEstimate = saunit.AreaEstimate

// Experiments.
type (
	// ExpTable is a rendered experiment (title, header, rows).
	ExpTable = exp.Table
	// ExpOptions controls experiment scale (Scale: 1 = paper sizes).
	ExpOptions = exp.Options
)

// Table1 renders the machine parameters as in the paper's Table 1.
func Table1() ExpTable { return exp.Table1() }

// PlotFigure renders an ASCII chart of a figure's table in the style of the
// paper's own presentation (log-log curves, grouped bars, scaling curves).
var PlotFigure = exp.Plot

// ReproCheck is one verified paper claim from Report.
type ReproCheck = exp.Check

// Report regenerates every experiment, checks the paper's headline claims
// against the measured shapes, and returns a markdown report plus the
// individual check results.
var Report = exp.Report

// Figure regenerates one of the paper's figures (6-13) at the given scale.
func Figure(n int, o ExpOptions) (ExpTable, error) {
	switch n {
	case 6:
		return exp.Fig6(o), nil
	case 7:
		return exp.Fig7(o), nil
	case 8:
		return exp.Fig8(o), nil
	case 9:
		return exp.Fig9(o), nil
	case 10:
		return exp.Fig10(o), nil
	case 11:
		return exp.Fig11(o), nil
	case 12:
		return exp.Fig12(o), nil
	case 13:
		return exp.Fig13(o), nil
	}
	return ExpTable{}, fmt.Errorf("scatteradd: no figure %d in the paper's evaluation", n)
}

// Individual ablation studies beyond the paper's own figures.
var (
	// AblationDRAMSched compares FR-FCFS against FIFO DRAM scheduling.
	AblationDRAMSched = exp.AblationDRAMSched
	// AblationSAPlacement compares per-bank scatter-add units against a
	// single unit at the memory interface.
	AblationSAPlacement = exp.AblationSAPlacement
	// AblationBatchSize sweeps the software sort&scan batch size.
	AblationBatchSize = exp.AblationBatchSize
	// AblationEagerCombine evaluates eager operand pre-combining.
	AblationEagerCombine = exp.AblationEagerCombine
	// AblationOverlap compares sequential vs software-pipelined scatter-add.
	AblationOverlap = exp.AblationOverlap
	// AblationHierarchical compares linear vs logarithmic multi-node
	// combining (the paper's §5 future work).
	AblationHierarchical = exp.AblationHierarchical
	// AblationWritePolicy compares write-allocate vs write-no-allocate.
	AblationWritePolicy = exp.AblationWritePolicy
	// AblationCombiningStore sweeps combining-store entries on the full
	// machine.
	AblationCombiningStore = exp.AblationCombiningStore
)

// Ablations returns all design-choice ablation studies (DRAM scheduling,
// unit placement, batch size, eager combining, combining-store size).
func Ablations(o ExpOptions) []ExpTable {
	return []ExpTable{
		AblationDRAMSched(o),
		AblationSAPlacement(o),
		AblationBatchSize(o),
		AblationEagerCombine(o),
		AblationCombiningStore(o),
		AblationOverlap(o),
		AblationHierarchical(o),
		AblationWritePolicy(o),
	}
}

// HistogramI64 is the package's quick-start helper: it bins data (values in
// [0, bins)) with the hardware scatter-add on m and returns the bins along
// with the run metrics.
func HistogramI64(m *Machine, data []int, bins int) ([]int64, Result) {
	const binBase = Addr(0)
	addrs := make([]Addr, len(data))
	for i, x := range data {
		if x < 0 || x >= bins {
			panic(fmt.Sprintf("scatteradd: datum %d outside [0,%d)", x, bins))
		}
		addrs[i] = binBase + Addr(x)
	}
	res := m.RunOp(ScatterAdd("histogram", AddI64, addrs, []Word{I64(1)}))
	m.FlushCaches()
	return m.Store().ReadI64Slice(binBase, bins), res
}

// ScanConfig returns the Table 1 machine with the scatter-add units in
// ordered-chain mode, turning Fetch* operations into the hardware scan
// (parallel prefix) engine the paper proposes as future work (§5).
func ScanConfig() Config {
	cfg := DefaultConfig()
	cfg.SA.OrderedChains = true
	return cfg
}

// PrefixSumI64 computes the exclusive prefix sums of vals on the hardware
// scan engine (one ordered fetch-add per element), returning the prefixes,
// the total, and the run metrics.
func PrefixSumI64(m *Machine, vals []int64) (prefix []int64, total int64, res Result) {
	if !m.Config().SA.OrderedChains {
		panic("scatteradd: PrefixSumI64 requires a machine built with ScanConfig (ordered chains)")
	}
	const counter = Addr(0)
	addrs := make([]Addr, len(vals))
	words := make([]Word, len(vals))
	for i, v := range vals {
		addrs[i] = counter
		words[i] = I64(v)
	}
	prefix = make([]int64, len(vals))
	op := ScatterAdd("prefix-sum", FetchAddI64, addrs, words)
	op.OnResp = func(r Response) { prefix[r.ID] = AsI64(r.Val) }
	res = m.RunOp(op)
	m.FlushCaches()
	return prefix, m.Store().LoadI64(counter), res
}

// ScatterAddF64 is a convenience wrapper: it atomically adds vals[i] into
// target[idx[i]] on m and returns the run metrics. The result can be read
// back with m.Store() after m.FlushCaches().
func ScatterAddF64(m *Machine, target Addr, idx []int, vals []float64) Result {
	if len(idx) != len(vals) {
		panic(fmt.Sprintf("scatteradd: %d indices, %d values", len(idx), len(vals)))
	}
	addrs := make([]Addr, len(idx))
	words := make([]Word, len(vals))
	for i := range idx {
		addrs[i] = target + Addr(idx[i])
		words[i] = F64(vals[i])
	}
	return m.RunOp(ScatterAdd("scatter-add", AddF64, addrs, words))
}
