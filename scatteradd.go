// Package scatteradd is a cycle-level reproduction of "Scatter-Add in Data
// Parallel Architectures" (Ahn, Erez, Dally — HPCA 2005): a simulated
// Merrimac-like stream processor whose memory system performs atomic
// data-parallel read-modify-write operations in hardware scatter-add units,
// together with the paper's software alternatives (sort + segmented scan,
// privatization, coloring), its three evaluation applications (histogram,
// sparse matrix-vector multiply, molecular dynamics), a multi-node model
// with cache combining and a fault-injected resilience mode, and runners
// that regenerate every table and figure of the paper's evaluation.
//
// # Quick start
//
//	m := scatteradd.New()
//	data := []int{3, 1, 3, 7, 3, 1}
//	bins, res := scatteradd.HistogramI64(m, data, 8)
//	fmt.Println(bins, res.Cycles)
//
// New accepts functional options: WithConfig for a non-default machine,
// WithFaults for deterministic fault injection, WithTracer to observe every
// issued memory request, WithSampler for periodic callbacks on the machine
// clock, and WithLegacyStepping to force per-cycle simulation.
//
// The simulator is functional as well as timed: scatter-add results are
// computed by the simulated hardware and can be read back from the
// machine's memory, so performance experiments double as correctness
// checks.
//
// Lower-level building blocks live in the internal packages and are
// re-exported here: machine configuration and stream operations
// (LoadStream, Gather, ScatterAdd, Kernel, ... — see api_streams.go), the
// software scatter-add methods (SortScan, Privatize, Colored), the
// evaluation applications (NewHistogram, NewSpMV, NewMolDyn), the
// multi-node system (NewMultiNode), and the experiment runners (Figure,
// Table1 — see api_experiments.go).
package scatteradd

import (
	"fmt"

	"scatteradd/internal/apps"
	"scatteradd/internal/fault"
	"scatteradd/internal/machine"
	"scatteradd/internal/mem"
	"scatteradd/internal/multinode"
	"scatteradd/internal/saunit"
	"scatteradd/internal/softscatter"
)

// Core memory-model types.
type (
	// Addr is a word-granular memory address.
	Addr = mem.Addr
	// Word is the raw 64-bit contents of one memory word.
	Word = mem.Word
	// Kind identifies a memory operation (Read, Write, AddF64, ...).
	Kind = mem.Kind
	// Request is one word-granular memory request as issued by the address
	// generators (observable via WithTracer).
	Request = mem.Request
)

// Memory operation kinds. AddF64 and AddI64 are the paper's scatter-add;
// Min/Max/Mul are the §3.3 extensions; FetchAdd* implement the
// data-parallel Fetch&Op with a return path.
const (
	Read        = mem.Read
	Write       = mem.Write
	AddF64      = mem.AddF64
	AddI64      = mem.AddI64
	MinF64      = mem.MinF64
	MaxF64      = mem.MaxF64
	MulF64      = mem.MulF64
	MinI64      = mem.MinI64
	MaxI64      = mem.MaxI64
	FetchAddF64 = mem.FetchAddF64
	FetchAddI64 = mem.FetchAddI64
)

// Word conversions.
var (
	// F64 converts a float64 to its Word representation.
	F64 = mem.F64
	// AsF64 converts a Word to float64.
	AsF64 = mem.AsF64
	// I64 converts an int64 to its Word representation.
	I64 = mem.I64
	// AsI64 converts a Word to int64.
	AsI64 = mem.AsI64
)

// Machine model.
type (
	// Config describes one simulated node (Table 1 defaults).
	Config = machine.Config
	// UniformMemConfig selects the cache-less sensitivity-study memory.
	UniformMemConfig = machine.UniformMemConfig
	// Machine is one simulated stream-processor node.
	Machine = machine.Machine
	// Op is one stream operation (kernel or memory transfer).
	Op = machine.Op
	// Result carries cycles, FP operations, and memory references.
	Result = machine.Result
	// Response is a completed read or fetch-and-op.
	Response = mem.Response
)

// FaultConfig configures deterministic, seed-driven fault injection:
// network packet drops and duplications, DRAM channel stalls and outage
// windows, combining-store parity corruption, and scatter-add FU transient
// errors, plus the recovery knobs (retry timeout/backoff, degradation
// threshold). The zero value injects nothing and costs nothing.
type FaultConfig = fault.Config

// DefaultChaosFaults returns a moderate every-injector-active fault
// configuration, the default chaos rate of the resilience test suite.
func DefaultChaosFaults() FaultConfig { return fault.DefaultChaos() }

// DefaultConfig returns the paper's Table 1 machine configuration.
func DefaultConfig() Config { return machine.DefaultConfig() }

// Option customizes a Machine built with New.
type Option func(*builder)

// builder accumulates the options of one New call.
type builder struct {
	cfg      Config
	tracer   func(cycle uint64, req Request)
	interval uint64
	sampler  func(now uint64)
}

// WithConfig replaces the default Table 1 configuration wholesale. Combine
// with later options freely: WithFaults and WithLegacyStepping overwrite
// only their own fields of the provided config.
func WithConfig(cfg Config) Option {
	return func(b *builder) { b.cfg = cfg }
}

// WithFaults enables deterministic fault injection across the machine's
// memory system (DRAM stalls and outage windows, combining-store parity
// scrubs, FU transient-error retries). Faults cost cycles; recovery keeps
// every reduction bit-exact.
func WithFaults(fc FaultConfig) Option {
	return func(b *builder) { b.cfg.Faults = fc }
}

// WithTracer installs a hook observing every memory request the address
// generators issue.
func WithTracer(fn func(cycle uint64, req Request)) Option {
	return func(b *builder) { b.tracer = fn }
}

// WithSampler installs a periodic callback invoked every interval cycles of
// machine time (including across fast-forwarded stretches) — the raw form
// of Machine.StartTimeline, for custom occupancy or progress sampling.
func WithSampler(interval uint64, fn func(now uint64)) Option {
	return func(b *builder) { b.interval, b.sampler = interval, fn }
}

// WithLegacyStepping forces per-cycle engine stepping, disabling the
// quiescence fast-forward path. Results are cycle-exact either way; the
// option exists for differential testing and performance attribution.
func WithLegacyStepping() Option {
	return func(b *builder) { b.cfg.LegacyStepping = true }
}

// New constructs a simulated node. With no options it is the paper's
// Table 1 machine; options customize configuration, fault injection, and
// instrumentation:
//
//	m := scatteradd.New(
//		scatteradd.WithFaults(scatteradd.DefaultChaosFaults()),
//		scatteradd.WithTracer(func(cycle uint64, req scatteradd.Request) { ... }),
//	)
func New(opts ...Option) *Machine {
	b := builder{cfg: DefaultConfig()}
	for _, opt := range opts {
		opt(&b)
	}
	m := machine.New(b.cfg)
	if b.tracer != nil {
		m.SetTracer(b.tracer)
	}
	if b.sampler != nil {
		m.SetSampler(b.interval, b.sampler)
	}
	return m
}

// NewMachine constructs a simulated node from a raw Config.
//
// Deprecated: use New with WithConfig (or no options for the Table 1
// default). NewMachine is kept for source compatibility and is exactly
// New(WithConfig(cfg)).
func NewMachine(cfg Config) *Machine { return New(WithConfig(cfg)) }

// Software scatter-add methods (§2.1).
var (
	// SortScan performs scatter-add by batched bitonic sort + segmented
	// scan (batch 0 selects the paper's 256).
	SortScan = softscatter.SortScan
	// Privatize performs scatter-add by privatization (O(m*n)).
	Privatize = softscatter.Privatize
	// Colored performs scatter-add using a precomputed collision-free
	// coloring.
	Colored = softscatter.Colored
)

// Evaluation applications (§4.1).
type (
	// Histogram is the binning workload of Figures 6-8.
	Histogram = apps.Histogram
	// SpMV is the sparse matrix-vector workload of Figure 9.
	SpMV = apps.SpMV
	// MolDyn is the molecular-dynamics workload of Figure 10.
	MolDyn = apps.MolDyn
)

var (
	// NewHistogram builds n uniform indices over rangeSize bins.
	NewHistogram = apps.NewHistogram
	// NewSpMV builds the synthetic finite-element SpMV workload.
	NewSpMV = apps.NewSpMV
	// NewMolDyn builds the water-box molecular-dynamics workload.
	NewMolDyn = apps.NewMolDyn
)

// Multi-node system (§3.2, §4.5).
type (
	// MultiNodeConfig describes the multi-node system.
	MultiNodeConfig = multinode.Config
	// MultiNode is the crossbar-connected multi-node machine.
	MultiNode = multinode.System
	// MultiNodeRef is one scatter-add reference of a trace.
	MultiNodeRef = multinode.Ref
	// MultiNodeResult reports a trace replay (including resilience
	// outcomes: retransmissions, deduplicated replays, degraded nodes).
	MultiNodeResult = multinode.Result
)

// Interconnect topology: the switch graph the nodes sit on and where
// scatter-add combining happens (in the sending node's cache, inside every
// switch of a multi-hop fabric, or nowhere).
type (
	// Topology selects the multi-node interconnect and combining placement.
	Topology = multinode.Topology
	// TopologyKind names an interconnect arrangement (flat, hypercube,
	// tree, mesh).
	TopologyKind = multinode.TopologyKind
)

// Topology kinds.
const (
	TopoDefault   = multinode.TopoDefault
	TopoFlat      = multinode.TopoFlat
	TopoHypercube = multinode.TopoHypercube
	TopoTree      = multinode.TopoTree
	TopoMesh      = multinode.TopoMesh
)

// Topology constructors.
var (
	// FlatTopology is the paper's single full crossbar (§4.5).
	FlatTopology = multinode.Flat
	// FlatCombiningTopology is the flat crossbar with the paper's
	// cache-combining + sum-back mode.
	FlatCombiningTopology = multinode.FlatCombining
	// HypercubeTopology routes sum-backs along logical hypercube
	// dimensions, merging partial lines at every hop (§5 future work).
	HypercubeTopology = multinode.Hypercube
	// TreeTopology is a multi-hop fat-tree of small crossbar switches with
	// the given fan-in (0 = 4), optionally combining same-address
	// scatter-adds inside every switch.
	TreeTopology = multinode.Tree
	// MeshTopology is a multi-hop 2D mesh of per-node switches with XY
	// routing, optionally combining inside every switch.
	MeshTopology = multinode.Mesh
	// ParseTopology maps a CLI/server name (flat, flat+comb, hypercube,
	// tree, tree+comb, mesh, mesh+comb) onto a Topology.
	ParseTopology = multinode.ParseTopology
)

// DefaultMultiNodeConfig returns nodes Table 1 nodes over a crossbar with
// the given per-port bandwidth in words/cycle (1 = the paper's low
// configuration, 8 = high), each owning span words of the address space.
// Set Faults on the returned config to inject network, DRAM, and
// combining-store faults; the link layer recovers them with acknowledged,
// sequence-numbered retransmission and bit-exact idempotent replay. Set
// Topology (or build with NewMultiNodeWith(WithTopology(...))) to replace
// the flat crossbar with a multi-hop fabric.
func DefaultMultiNodeConfig(nodes, wordsPerCyc int, span Addr) MultiNodeConfig {
	return multinode.DefaultConfig(nodes, wordsPerCyc, span)
}

// NewMultiNode constructs the multi-node system for traces of the given
// combine kind.
func NewMultiNode(cfg MultiNodeConfig, kind Kind) *MultiNode {
	return multinode.New(cfg, kind)
}

// MultiNodeOption customizes a MultiNode built with NewMultiNodeWith.
type MultiNodeOption func(*MultiNodeConfig)

// WithTopology selects the interconnect topology and combining placement,
// replacing the deprecated Combining/Hierarchical bool pair:
//
//	s := scatteradd.NewMultiNodeWith(cfg, scatteradd.AddI64,
//		scatteradd.WithTopology(scatteradd.TreeTopology(4, true)))
func WithTopology(t Topology) MultiNodeOption {
	return func(cfg *MultiNodeConfig) { cfg.Topology = t }
}

// WithMultiNodeFaults enables deterministic fault injection on the
// multi-node system (per-hop packet drops and duplications, DRAM stalls,
// combining-store parity scrubs); recovery keeps every reduction bit-exact.
func WithMultiNodeFaults(fc FaultConfig) MultiNodeOption {
	return func(cfg *MultiNodeConfig) { cfg.Faults = fc }
}

// NewMultiNodeWith constructs the multi-node system after applying opts to
// cfg — the option-style twin of NewMultiNode.
func NewMultiNodeWith(cfg MultiNodeConfig, kind Kind, opts ...MultiNodeOption) *MultiNode {
	for _, opt := range opts {
		opt(&cfg)
	}
	return multinode.New(cfg, kind)
}

// AreaEstimate returns the scatter-add hardware area in mm² (90 nm) and the
// fraction of a 10x10 mm die, per the paper's §3.2 estimate.
var AreaEstimate = saunit.AreaEstimate

// HistogramI64 is the package's quick-start helper: it bins data (values in
// [0, bins)) with the hardware scatter-add on m and returns the bins along
// with the run metrics.
func HistogramI64(m *Machine, data []int, bins int) ([]int64, Result) {
	const binBase = Addr(0)
	addrs := make([]Addr, len(data))
	for i, x := range data {
		if x < 0 || x >= bins {
			panic(fmt.Sprintf("scatteradd: datum %d outside [0,%d)", x, bins))
		}
		addrs[i] = binBase + Addr(x)
	}
	res := m.RunOp(ScatterAdd("histogram", AddI64, addrs, []Word{I64(1)}))
	m.FlushCaches()
	return m.Store().ReadI64Slice(binBase, bins), res
}

// ScanConfig returns the Table 1 machine with the scatter-add units in
// ordered-chain mode, turning Fetch* operations into the hardware scan
// (parallel prefix) engine the paper proposes as future work (§5).
func ScanConfig() Config {
	cfg := DefaultConfig()
	cfg.SA.OrderedChains = true
	return cfg
}

// PrefixSumI64 computes the exclusive prefix sums of vals on the hardware
// scan engine (one ordered fetch-add per element), returning the prefixes,
// the total, and the run metrics.
func PrefixSumI64(m *Machine, vals []int64) (prefix []int64, total int64, res Result) {
	if !m.Config().SA.OrderedChains {
		panic("scatteradd: PrefixSumI64 requires a machine built with ScanConfig (ordered chains)")
	}
	const counter = Addr(0)
	addrs := make([]Addr, len(vals))
	words := make([]Word, len(vals))
	for i, v := range vals {
		addrs[i] = counter
		words[i] = I64(v)
	}
	prefix = make([]int64, len(vals))
	op := ScatterAdd("prefix-sum", FetchAddI64, addrs, words)
	op.OnResp = func(r Response) { prefix[r.ID] = AsI64(r.Val) }
	res = m.RunOp(op)
	m.FlushCaches()
	return prefix, m.Store().LoadI64(counter), res
}

// ScatterAddF64 is a convenience wrapper: it atomically adds vals[i] into
// target[idx[i]] on m and returns the run metrics. The result can be read
// back with m.Store() after m.FlushCaches().
func ScatterAddF64(m *Machine, target Addr, idx []int, vals []float64) Result {
	if len(idx) != len(vals) {
		panic(fmt.Sprintf("scatteradd: %d indices, %d values", len(idx), len(vals)))
	}
	addrs := make([]Addr, len(idx))
	words := make([]Word, len(vals))
	for i := range idx {
		addrs[i] = target + Addr(idx[i])
		words[i] = F64(vals[i])
	}
	return m.RunOp(ScatterAdd("scatter-add", AddF64, addrs, words))
}
