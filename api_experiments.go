package scatteradd

// This file re-exports the experiment surface: the runners that regenerate
// every table and figure of the paper's evaluation, the ablation studies,
// and the reproduction report with its claim checks.

import (
	"fmt"

	"scatteradd/internal/exp"
)

// Experiments.
type (
	// ExpTable is a rendered experiment (title, header, rows).
	ExpTable = exp.Table
	// ExpOptions controls experiment scale (Scale: 1 = paper sizes),
	// parallelism (Jobs), fault injection (Faults), and checkpoint/resume
	// of figure sweeps (CheckpointDir).
	ExpOptions = exp.Options
)

// Table1 renders the machine parameters as in the paper's Table 1.
func Table1() ExpTable { return exp.Table1() }

// AutoShards is the automatic intra-run shard-width policy used when
// ExpOptions.Shards is 0: the CPUs left over after a pool of jobs workers,
// capped at the widest useful partition and narrowed for scaled-down runs.
// Exported so CLIs can log what "-shards auto" resolved to.
var AutoShards = exp.AutoShards

// PlotFigure renders an ASCII chart of a figure's table in the style of the
// paper's own presentation (log-log curves, grouped bars, scaling curves).
var PlotFigure = exp.Plot

// ReproCheck is one verified paper claim from Report.
type ReproCheck = exp.Check

// Report regenerates every experiment, checks the paper's headline claims
// against the measured shapes, and returns a markdown report plus the
// individual check results.
var Report = exp.Report

// Figure regenerates one of the paper's figures (6-13), or the interconnect
// scale-out extension (14), at the given scale.
// With o.CheckpointDir set, a completed figure is snapshotted there and a
// repeat request with matching options is served from the snapshot.
func Figure(n int, o ExpOptions) (ExpTable, error) {
	switch n {
	case 6:
		return exp.Fig6(o), nil
	case 7:
		return exp.Fig7(o), nil
	case 8:
		return exp.Fig8(o), nil
	case 9:
		return exp.Fig9(o), nil
	case 10:
		return exp.Fig10(o), nil
	case 11:
		return exp.Fig11(o), nil
	case 12:
		return exp.Fig12(o), nil
	case 13:
		return exp.Fig13(o), nil
	case 14:
		return exp.Fig14(o), nil
	}
	return ExpTable{}, fmt.Errorf("scatteradd: no figure %d in the paper's evaluation", n)
}

// Individual ablation studies beyond the paper's own figures.
var (
	// AblationDRAMSched compares FR-FCFS against FIFO DRAM scheduling.
	AblationDRAMSched = exp.AblationDRAMSched
	// AblationSAPlacement compares per-bank scatter-add units against a
	// single unit at the memory interface.
	AblationSAPlacement = exp.AblationSAPlacement
	// AblationBatchSize sweeps the software sort&scan batch size.
	AblationBatchSize = exp.AblationBatchSize
	// AblationEagerCombine evaluates eager operand pre-combining.
	AblationEagerCombine = exp.AblationEagerCombine
	// AblationOverlap compares sequential vs software-pipelined scatter-add.
	AblationOverlap = exp.AblationOverlap
	// AblationHierarchical compares linear vs logarithmic multi-node
	// combining (the paper's §5 future work).
	AblationHierarchical = exp.AblationHierarchical
	// AblationWritePolicy compares write-allocate vs write-no-allocate.
	AblationWritePolicy = exp.AblationWritePolicy
	// AblationCombiningStore sweeps combining-store entries on the full
	// machine.
	AblationCombiningStore = exp.AblationCombiningStore
)

// Ablations returns all design-choice ablation studies (DRAM scheduling,
// unit placement, batch size, eager combining, combining-store size).
func Ablations(o ExpOptions) []ExpTable {
	return []ExpTable{
		AblationDRAMSched(o),
		AblationSAPlacement(o),
		AblationBatchSize(o),
		AblationEagerCombine(o),
		AblationCombiningStore(o),
		AblationOverlap(o),
		AblationHierarchical(o),
		AblationWritePolicy(o),
	}
}
